(** The scenario runner behind every figure and table.

    One [run] simulates the paper's benchmark (§6.2): [n] stacks on a
    LAN, a constant aggregate load of ABcast messages, optionally one
    dynamic protocol replacement triggered mid-run, under a selectable
    DPU approach. It returns the per-message latency series (the
    paper's average-latency metric), the statistics split into the
    normal period and the replacement window, and enough bookkeeping
    to check every correctness property afterwards. *)

module Stats = Dpu_engine.Stats
module Series = Dpu_engine.Series

type approach =
  | No_layer  (** application directly on [abcast] (Fig. 6 baseline) *)
  | Repl  (** the paper's replacement module (Algorithm 1) *)
  | Maestro  (** whole-stack switch baseline [20] *)
  | Graceful  (** AAC/CA barrier baseline [6] *)

val approach_name : approach -> string

type params = {
  n : int;
  seed : int;
  load : float;  (** total messages per second *)
  duration_ms : float;  (** load generation horizon *)
  warmup_ms : float;  (** excluded from the "normal" statistics *)
  msg_size : int;
  initial : string;  (** initial ABcast variant *)
  switch_to : string option;  (** [None]: no replacement *)
  switch_at_ms : float;
  approach : approach;
  batch_size : int;
  batching : Dpu_protocols.Batcher.config option;
      (** throughput-mode batch aggregation in the ordering hot path
          ([None] = the exact unbatched code paths) *)
  loss : float;
  hop_cost : float;
  trace_enabled : bool;
  metrics_enabled : bool;
      (** allocate a live metrics registry (default off: all
          instrumentation is no-op and results are bit-identical to a
          run without observability) *)
  pattern : Load_gen.pattern;  (** arrival process (default Poisson) *)
  during_margin_ms : float;
      (** messages sent this long after the last stack switched still
          count as "during the replacement" (cold-start tail) *)
  consensus_layer : string option;
      (** install the consensus replacement layer on this initial
          implementation *)
  switch_consensus : (float * string) option;
      (** (time, target implementation): hot-swap consensus mid-run
          (needs [consensus_layer]) *)
  faults : Dpu_faults.Schedule.t;
      (** declarative fault schedule armed at virtual time 0. [Crash]
          is fail-stop here (stack + network endpoint); [Recover] of a
          fail-stopped node is ignored. Default: no faults. *)
  log_out : string option;
      (** write structured JSONL milestone logs (start, switch
          triggers, crashes, completion) to this path, stamped on the
          {e virtual} clock — identical params produce byte-identical
          files; [None] (the default) is the noop logger *)
  epoch_buffer : bool;
      (** install the future-epoch wire buffer alongside the layer
          (default [true]). Disabling it reopens the receive-side hole
          in the generation filter; {!preflight} rejects such a plan
          whenever a switch is requested *)
}

val default : params
(** n=7, 40 msg/s, 4 KB, 10 s, CT→CT switch at 5 s under [Repl] — the
    paper's Fig. 5 setting. *)

type result = {
  params : params;
  latency : Series.t;  (** avg latency per message, keyed by send time *)
  normal : Stats.t;  (** messages sent outside the replacement window *)
  during : Stats.t;  (** messages sent inside it *)
  switch_window : (float * float) option;
      (** [(trigger, last stack switched)] *)
  switch_duration_ms : float;  (** window width; 0 when no switch *)
  blocked_ms : float;  (** max application-blocked time over stacks *)
  sent : int;
  delivered_everywhere : int;  (** messages delivered by all correct stacks *)
  collector : Dpu_core.Collector.t;
  trace : Dpu_kernel.Trace.t;
  metrics : Dpu_obs.Metrics.t;
      (** the run's metrics registry ({!Dpu_obs.Metrics.noop} unless
          [metrics_enabled]) *)
  correct : int list;
}

exception Preflight_failure of Dpu_props.Report.t list
(** The static composition verifier rejected the configuration. Raised
    by [run] before any simulation step, so a mis-composed profile or
    unsafe update plan fails in milliseconds instead of surfacing as a
    stuck stack minutes into a sweep. *)

val preflight : params -> Dpu_props.Report.t list
(** Statically verify the configuration [run] would assemble
    ({!Dpu_analysis.Composition}): stack well-formedness, provider
    acyclicity, unique bindings and update-plan safety for the planned
    [switch_to] / [switch_consensus] swaps. No simulation happens. *)

val run : ?crash_at:(float * int) list -> params -> result
(** [crash_at] is a list of (virtual time, node) fail-stop injections
    (the pre-DSL interface; equivalent to [Crash] events in [faults]).
    Raises [Invalid_argument] if [params.faults] fails
    {!Dpu_faults.Schedule.validate}, and {!Preflight_failure} if the
    static composition verifier rejects the configuration. *)

val check : result -> Dpu_props.Report.t list
(** All ABcast properties plus the generic §3 properties for the run. *)
