(** Saturation benchmarking: offered vs delivered throughput.

    The paper's evaluation is latency-centric; this module adds the
    throughput axis for the batched ordering path. Two drivers:

    - {!sweep} is {b open loop}: a fixed offered rate per step (via
      {!Load_gen.start}), measuring the delivered rate inside a
      steady-state window. Past the saturation knee the delivered rate
      plateaus at the stack's service capacity while latency grows with
      the backlog — the classic saturation curve.
    - {!saturate} is {b closed loop}: a fixed number of clients per
      node, each re-broadcasting as soon as its previous message comes
      back delivered. No offered-rate parameter to guess; the loop
      settles at the sustainable throughput by construction.

    Both run the full default stack (CT ABcast over consensus, under
    the Repl layer) on the simulator, so results are deterministic for
    a given seed; [batching] turns the protocol-level batch aggregation
    of {!Dpu_protocols.Batcher} on, which is the mechanism under test:
    one consensus round then orders up to [max_batch] messages. *)

type point = {
  offered : float;  (** msg/s presented (closed loop: equals delivered) *)
  delivered_per_s : float;
      (** deliveries at node 0 inside the measurement window *)
  p50_ms : float;
  p99_ms : float;
  measured : int;  (** messages behind the percentiles *)
}

type curve = {
  batching : Dpu_protocols.Batcher.config option;
  points : point list;  (** in offered-load order *)
  knee : float;
      (** highest offered load still delivered within 10%; [0.] if even
          the lightest step saturated *)
  saturated_per_s : float;  (** best delivered rate seen on the curve *)
}

type params = {
  n : int;
  seed : int;
  msg_size : int;
  warmup_ms : float;  (** excluded from the measurement window *)
  duration_ms : float;  (** load stops here; the run drains afterwards *)
  batching : Dpu_protocols.Batcher.config option;
}

val default : params
(** n=3, seed=1, 512-byte payloads, 500 ms warmup, 3 s of load, no
    batching. *)

val measure : params -> offered:float -> point
(** One open-loop step at a fixed offered rate. *)

val curve_of :
  batching:Dpu_protocols.Batcher.config option -> point list -> curve
(** Knee detection and saturation over already-measured points (e.g.
    when the steps were fanned out to a {!Sweep}). *)

val sweep : ?params:params -> loads:float list -> unit -> curve
(** One open-loop step per offered load, same parameters throughout. *)

val saturate : ?params:params -> ?clients_per_node:int -> unit -> point
(** Closed-loop driver: [clients_per_node] (default 4) outstanding
    messages per node, re-issued on own delivery after a small think
    time. *)

val batching_label : Dpu_protocols.Batcher.config option -> string

val csv_header : string list

val csv_rows : curve list -> string list list

val write_csv : string -> curve list -> unit
(** The saturation curves as CSV (one row per point), for the CI
    artifact and external plotting. *)
