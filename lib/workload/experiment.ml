module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module Collector = Dpu_core.Collector
module Stats = Dpu_engine.Stats
module Series = Dpu_engine.Series
module Clock = Dpu_runtime.Clock

type approach =
  | No_layer
  | Repl
  | Maestro
  | Graceful

let approach_name = function
  | No_layer -> "no-layer"
  | Repl -> "repl"
  | Maestro -> "maestro"
  | Graceful -> "graceful"

type params = {
  n : int;
  seed : int;
  load : float;
  duration_ms : float;
  warmup_ms : float;
  msg_size : int;
  initial : string;
  switch_to : string option;
  switch_at_ms : float;
  approach : approach;
  batch_size : int;
  batching : Dpu_protocols.Batcher.config option;
  loss : float;
  hop_cost : float;
  trace_enabled : bool;
  metrics_enabled : bool;
  pattern : Load_gen.pattern;
  during_margin_ms : float;
  consensus_layer : string option;
  switch_consensus : (float * string) option;
  faults : Dpu_faults.Schedule.t;
  log_out : string option;
  epoch_buffer : bool;
}

let default =
  {
    n = 7;
    seed = 1;
    load = 40.0;
    duration_ms = 10_000.0;
    warmup_ms = 500.0;
    msg_size = 4096;
    initial = Dpu_core.Variants.ct;
    switch_to = Some Dpu_core.Variants.ct;
    switch_at_ms = 5_000.0;
    approach = Repl;
    batch_size = 1;
    batching = None;
    loss = 0.0;
    hop_cost = 0.5;
    trace_enabled = false;
    metrics_enabled = false;
    pattern = Load_gen.Poisson;
    during_margin_ms = 50.0;
    consensus_layer = None;
    switch_consensus = None;
    faults = [];
    log_out = None;
    epoch_buffer = true;
  }

type result = {
  params : params;
  latency : Series.t;
  normal : Stats.t;
  during : Stats.t;
  switch_window : (float * float) option;
  switch_duration_ms : float;
  blocked_ms : float;
  sent : int;
  delivered_everywhere : int;
  collector : Dpu_core.Collector.t;
  trace : Dpu_kernel.Trace.t;
  metrics : Dpu_obs.Metrics.t;
  correct : int list;
}

let layer_of = function
  | No_layer -> None
  | Repl -> Some Dpu_core.Repl.protocol_name
  | Maestro -> Some Dpu_baselines.Maestro.protocol_name
  | Graceful -> Some Dpu_baselines.Graceful.protocol_name

let profile_of params =
  {
    SB.initial_abcast = params.initial;
    layer = layer_of params.approach;
    with_gm = false;
    batch_size = params.batch_size;
    batching = params.batching;
    consensus_layer = params.consensus_layer;
    epoch_buffer = params.epoch_buffer;
  }

let register_extra system =
  Dpu_baselines.Maestro.register system;
  Dpu_baselines.Graceful.register system

exception Preflight_failure of Dpu_props.Report.t list

let () =
  Printexc.register_printer (function
    | Preflight_failure reports ->
      Some
        (Format.asprintf "Experiment.Preflight_failure:@.%a"
           Dpu_props.Report.pp_all reports)
    | _ -> None)

let preflight params =
  let profile = profile_of params in
  (* A scratch system: registration populates the registry without
     building any stack, which is all the static verifier needs. *)
  let system = Dpu_kernel.System.create ~n:params.n () in
  SB.register_protocols ~register_extra ~profile system;
  let updates =
    match (params.switch_to, profile.SB.layer) with
    | Some target, Some _ -> [ target ]
    | Some _, None | None, _ -> []
  in
  let consensus_updates =
    match params.switch_consensus with Some (_, target) -> [ target ] | None -> []
  in
  Dpu_analysis.Composition.verify_profile
    ~registry:(Dpu_kernel.System.registry system)
    ~updates ~consensus_updates profile

let run ?(crash_at = []) params =
  (let reports = preflight params in
   if not (Dpu_props.Report.all_ok reports) then raise (Preflight_failure reports));
  let profile = profile_of params in
  let config =
    {
      MW.default_config with
      seed = params.seed;
      loss = params.loss;
      hop_cost = params.hop_cost;
      profile;
      trace_enabled = params.trace_enabled;
      metrics_enabled = params.metrics_enabled;
      msg_size = params.msg_size;
    }
  in
  let mw = MW.create ~config ~register_extra ~n:params.n () in
  let system = MW.system mw in
  let clock = Dpu_kernel.System.clock system in
  (* The structured log is stamped on the VIRTUAL clock: with the same
     params the emitted JSONL bytes are a pure function of the run —
     the determinism tests diff two runs' files verbatim. *)
  let log, close_log =
    match params.log_out with
    | None -> (Dpu_obs.Log.noop, fun () -> ())
    | Some path -> Dpu_obs.Log.to_file ~clock:(fun () -> Clock.now clock) path
  in
  Dpu_obs.Log.info log
    ~fields:
      [ ("n", Dpu_obs.Json.Int params.n);
        ("seed", Dpu_obs.Json.Int params.seed);
        ("load", Dpu_obs.Json.Float params.load);
        ("approach", Dpu_obs.Json.Str (approach_name params.approach));
        ("initial", Dpu_obs.Json.Str params.initial) ]
    "experiment start";
  (match Dpu_faults.Schedule.validate ~n:params.n params.faults with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Experiment.run: bad fault schedule: %s" msg));
  (* In the full-stack harness a scheduled [Crash] is fail-stop (stack
     and network endpoint both die); a [Recover] of a fail-stopped node
     is ignored — the process model has no rejoin — so it only applies
     to network-level silences. *)
  Dpu_faults.Schedule.arm
    ~crash_node:(fun node -> MW.crash mw node)
    ~recover_node:(fun node ->
      if not (Dpu_kernel.Stack.is_crashed (Dpu_kernel.System.stack system node)) then
        Dpu_net.Datagram.recover (Dpu_kernel.System.net system) node)
    (Dpu_kernel.System.net system)
    params.faults;
  Load_gen.start mw ~rate_per_s:params.load ~pattern:params.pattern
    ~size:params.msg_size ~until:params.duration_ms ();
  let switch_requested =
    match (params.switch_to, layer_of params.approach) with
    | Some protocol, Some _ ->
      (* "any process triggers the replacement" (§6.2) — pick one that
         is still alive at the switch time. *)
      let trigger_node =
        let crashed_by_then =
          List.filter_map
            (fun (t, node) -> if t <= params.switch_at_ms then Some node else None)
            crash_at
          @ Dpu_faults.Schedule.crashed_before params.faults ~time:params.switch_at_ms
        in
        let rec pick node =
          if node < 0 then 0
          else if List.mem node crashed_by_then then pick (node - 1)
          else node
        in
        pick (params.n - 1)
      in
      Clock.defer clock ~delay:params.switch_at_ms (fun () ->
          Dpu_obs.Log.info log
            ~fields:
              [ ("node", Dpu_obs.Json.Int trigger_node);
                ("target", Dpu_obs.Json.Str protocol) ]
            "switch trigger";
          MW.change_protocol mw ~node:trigger_node protocol);
      true
    | Some _, None | None, _ -> false
  in
  (match params.switch_consensus with
  | Some (time, protocol) ->
    Clock.defer clock ~delay:time (fun () ->
        Dpu_obs.Log.info log
          ~fields:[ ("target", Dpu_obs.Json.Str protocol) ]
          "consensus switch trigger";
        MW.change_consensus mw ~node:0 protocol)
  | None -> ());
  List.iter
    (fun (time, node) ->
      Clock.defer clock ~delay:time (fun () ->
          Dpu_obs.Log.warn log
            ~fields:[ ("node", Dpu_obs.Json.Int node) ]
            "crash";
          MW.crash mw node))
    crash_at;
  MW.run_until_quiescent ~limit:(params.duration_ms +. 120_000.0) mw;
  let collector = MW.collector mw in
  let latency = Collector.latency_series collector in
  let switch_window =
    if switch_requested then
      match Collector.switch_window collector ~generation:1 with
      | Some (_first, last) -> Some (params.switch_at_ms, last)
      | None -> None
    else None
  in
  (* Messages sent up to [during_margin_ms] after the last stack
     switched are still attributed to the replacement: the fresh
     protocol's first instances are its cold start (the paper's spike
     decays over a short period after the switch, Fig. 5). *)
  let during_range =
    match switch_window with
    | Some (lo, hi) -> Some (lo, hi +. params.during_margin_ms)
    | None -> None
  in
  let normal = Stats.create () in
  let during = Stats.create () in
  List.iter
    (fun (p : Series.point) ->
      if p.time >= params.warmup_ms then
        match during_range with
        | Some (lo, hi) when p.time >= lo && p.time <= hi -> Stats.add during p.value
        | Some _ | None -> Stats.add normal p.value)
    (Series.points latency);
  let correct = Dpu_kernel.System.correct_nodes (MW.system mw) in
  let blocked_ms =
    Array.fold_left
      (fun acc stack -> Float.max acc (Dpu_baselines.Maestro.blocked_ms stack))
      0.0
      (Dpu_kernel.System.stacks (MW.system mw))
  in
  let sent = Collector.send_count collector in
  let undelivered =
    Collector.undelivered_ids collector ~expected_copies:(List.length correct)
  in
  Dpu_obs.Log.info log
    ~fields:
      ([ ("sent", Dpu_obs.Json.Int sent);
         ("delivered_everywhere", Dpu_obs.Json.Int (sent - List.length undelivered))
       ]
      @
      match switch_window with
      | Some (lo, hi) ->
        [ ("switch_from_ms", Dpu_obs.Json.Float lo);
          ("switch_to_ms", Dpu_obs.Json.Float hi) ]
      | None -> [])
    "experiment done";
  close_log ();
  {
    params;
    latency;
    normal;
    during;
    switch_window;
    switch_duration_ms =
      (match switch_window with Some (lo, hi) -> hi -. lo | None -> 0.0);
    blocked_ms;
    sent;
    delivered_everywhere = sent - List.length undelivered;
    collector;
    trace = Dpu_kernel.System.trace (MW.system mw);
    metrics = MW.metrics mw;
    correct;
  }

let check result =
  let abcast = Dpu_props.Abcast_props.check_all result.collector ~correct:result.correct in
  let nodes = List.init result.params.n (fun i -> i) in
  let protocols =
    result.params.initial
    :: (match result.params.switch_to with Some p when p <> result.params.initial -> [ p ] | Some _ | None -> [])
  in
  let generic =
    if Dpu_kernel.Trace.enabled result.trace then
      Dpu_props.Stack_props.check_generic result.trace ~protocols ~nodes
    else []
  in
  abcast @ generic
