module MW = Dpu_core.Middleware
module SB = Dpu_core.Stack_builder
module Collector = Dpu_core.Collector
module Series = Dpu_engine.Series
module Stats = Dpu_engine.Stats
module Clock = Dpu_runtime.Clock

type point = {
  offered : float;
  delivered_per_s : float;
  p50_ms : float;
  p99_ms : float;
  measured : int;
}

type curve = {
  batching : Dpu_protocols.Batcher.config option;
  points : point list;
  knee : float;
  saturated_per_s : float;
}

type params = {
  n : int;
  seed : int;
  msg_size : int;
  warmup_ms : float;
  duration_ms : float;
  batching : Dpu_protocols.Batcher.config option;
}

let default =
  {
    n = 3;
    seed = 1;
    msg_size = 512;
    warmup_ms = 500.0;
    duration_ms = 3_000.0;
    batching = None;
  }

let make_mw p =
  let profile = { SB.default_profile with batching = p.batching } in
  let config =
    { MW.default_config with profile; seed = p.seed; msg_size = p.msg_size }
  in
  MW.create ~config ~n:p.n ()

(* Throughput is deliveries inside the measurement window, not
   deliveries ever: the run drains to quiescence afterwards, so under
   overload every message IS eventually delivered — what saturates is
   the rate at which they come out during the window. Counted at node 0
   (total order: every correct node delivers the same sequence).
   Latency percentiles come from the same window, keyed by send time;
   messages sent in-window but delivered after it still contribute
   their (large) latency, which is exactly the queueing signal. *)
let window_stats p mw =
  let lo = p.warmup_ms and hi = p.duration_ms in
  let delivered =
    List.length
      (List.filter
         (fun (_, t) -> t >= lo && t < hi)
         (Collector.delivers_of (MW.collector mw) ~node:0))
  in
  let lat = Series.stats_between (MW.latency_series mw) ~lo ~hi in
  let window_s = (hi -. lo) /. 1000.0 in
  (float_of_int delivered /. window_s, lat)

let point_of p ~offered mw =
  let delivered_per_s, lat = window_stats p mw in
  {
    offered;
    delivered_per_s;
    p50_ms = (if Stats.count lat = 0 then 0.0 else Stats.percentile lat 50.0);
    p99_ms = (if Stats.count lat = 0 then 0.0 else Stats.percentile lat 99.0);
    measured = Stats.count lat;
  }

let measure p ~offered =
  let mw = make_mw p in
  Load_gen.start mw ~rate_per_s:offered ~pattern:Load_gen.Constant
    ~size:p.msg_size ~until:p.duration_ms ();
  MW.run_until_quiescent ~limit:(p.duration_ms +. 600_000.0) mw;
  point_of p ~offered mw

(* The knee is the last offered load the stack still kept up with
   (delivered within 10% of offered); past it the delivered rate
   plateaus at the service capacity, which [saturated_per_s] reports
   as the best rate seen anywhere on the curve. *)
let curve_of ~batching points =
  let knee =
    List.fold_left
      (fun acc pt ->
        if pt.delivered_per_s >= 0.9 *. pt.offered then Float.max acc pt.offered
        else acc)
      0.0 points
  in
  let saturated_per_s =
    List.fold_left (fun acc pt -> Float.max acc pt.delivered_per_s) 0.0 points
  in
  { batching; points; knee; saturated_per_s }

let sweep ?(params = default) ~loads () =
  curve_of ~batching:params.batching
    (List.map (fun offered -> measure params ~offered) loads)

let saturate ?(params = default) ?(clients_per_node = 4) () =
  let p = params in
  let mw = make_mw p in
  let clock = Dpu_kernel.System.clock (MW.system mw) in
  let think_ms = 0.05 in
  for node = 0 to p.n - 1 do
    (* A closed-loop client: re-broadcast the moment our own previous
       message comes back delivered. The re-send is deferred by a tiny
       think time rather than issued inside the delivery indication, so
       the stack never re-enters itself mid-dispatch. *)
    let send () =
      if Clock.now clock < p.duration_ms then
        ignore (MW.broadcast mw ~node ~size:p.msg_size "closed-loop" : Dpu_kernel.Msg.t)
    in
    MW.subscribe mw ~node (fun m ->
        if m.Dpu_kernel.Msg.id.Dpu_kernel.Msg.origin = node then
          ignore (Clock.defer clock ~delay:think_ms send));
    for c = 0 to clients_per_node - 1 do
      (* Staggered starts: one in-flight message per client slot. *)
      ignore
        (Clock.defer clock
           ~delay:(think_ms *. float_of_int ((node * clients_per_node) + c + 1))
           send)
    done
  done;
  MW.run_until_quiescent ~limit:(p.duration_ms +. 600_000.0) mw;
  (* A closed loop offers exactly what it sustains. *)
  let pt = point_of p ~offered:0.0 mw in
  { pt with offered = pt.delivered_per_s }

let batching_label = function
  | None -> "off"
  | Some c ->
    Printf.sprintf "on(max=%d,delay=%.1fms)" c.Dpu_protocols.Batcher.max_batch
      c.Dpu_protocols.Batcher.max_delay_ms

let csv_header =
  [ "batching"; "offered_msg_s"; "delivered_msg_s"; "p50_ms"; "p99_ms"; "measured" ]

let csv_rows curves =
  List.concat_map
    (fun (c : curve) ->
      List.map
        (fun pt ->
          [
            batching_label c.batching;
            Printf.sprintf "%.1f" pt.offered;
            Printf.sprintf "%.1f" pt.delivered_per_s;
            Printf.sprintf "%.3f" pt.p50_ms;
            Printf.sprintf "%.3f" pt.p99_ms;
            string_of_int pt.measured;
          ])
        c.points)
    curves

let write_csv path curves =
  Dpu_obs.Csv.to_file path ~header:csv_header (csv_rows curves)
