(** Sharded load runner: drive a {!Dpu_core.Fabric} — many independent
    ABcast groups over one simulator — under open- or closed-loop load,
    optionally performing a {e rolling protocol replacement} across
    every shard while the load keeps flowing, and report per-shard
    latency quantiles, switch windows and property batteries.

    The headline artefact of a rolling run is
    [result.max_concurrent_switches]: how many Algorithm 1 instances
    were in flight at the same instant. Per-group generations mean
    shard replacements never serialise, so with a stagger smaller than
    a switch window this is > 1. *)

type rolling = {
  to_protocol : string;  (** ABcast variant to switch every shard to *)
  start_ms : float;  (** virtual time of the first shard's switch *)
  stagger_ms : float;  (** delay between consecutive shards' triggers *)
}

val default_rolling : rolling
(** Sequencer at 200 ms with a 0.25 ms stagger — smaller than a switch
    window, so consecutive shards' windows overlap. *)

type params = {
  n : int;  (** total nodes across all shards *)
  shards : int;
  seed : int;
  msg_size : int;
  load_per_s : float;  (** aggregate open-loop rate, split by shard size *)
  warmup_ms : float;  (** latency samples before this are discarded *)
  duration_ms : float;  (** load stops here; the run then drains *)
  drain_ms : float;
      (** extra virtual time after [duration_ms] for in-flight messages
          to come out — a horizon, not a poll: the stacks' periodic
          failure-detector timers never stop, so the simulator is
          never literally idle *)
  closed_loop : int option;
      (** [Some k]: replace the open loop with [k] closed-loop clients
          per node, each re-sending on its own delivery *)
  rolling : rolling option;
  loss : float;
}

val default : params
(** 15 nodes / 4 shards, 200 msg/s aggregate, 2 s + drain, no rolling. *)

type shard_result = {
  shard : int;
  nodes : int;
  sent : int;
  delivered : int;  (** at the shard's node 0 (total order) *)
  measured : int;  (** latency samples after warmup *)
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;  (** bucket estimates ({!Dpu_obs.Metrics.quantile_of_buckets}) *)
  mean_ms : float;
  generation : int;
  window : (float * float) option;  (** switch window of [generation] *)
  blocked_ms : float;  (** worst per-stack app-blocked time (0 for Repl) *)
  undelivered : int;
  props_ok : bool;
  violations : string list;  (** first few, for the report *)
}

type result = {
  params : params;
  per_shard : shard_result list;
  max_concurrent_switches : int;
      (** across the generation-1 windows of all shards; 0 without rolling *)
  drained_at_ms : float;  (** virtual time the fabric went quiescent *)
  all_ok : bool;
      (** every shard: properties hold, nothing undelivered, nothing
          blocked, and (when rolling) the switch completed *)
}

val run : ?params:params -> unit -> result

val csv_header : string list

val csv_rows : result -> string list list

val write_csv : string -> result -> unit

val to_json : result -> Dpu_obs.Json.t
(** The full result as JSON — consumed by [dpu_run report]'s per-shard
    section. *)
