module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng
module Datagram = Dpu_net.Datagram
module Latency = Dpu_net.Latency
module Clock = Dpu_runtime.Clock
module Runtime = Dpu_runtime.Runtime
module Transport = Dpu_runtime.Transport
module System = Dpu_kernel.System
module Msg = Dpu_kernel.Msg
module MW = Dpu_core.Middleware
module Collector = Dpu_core.Collector
module Schedule = Dpu_faults.Schedule
module Corpus = Dpu_faults.Corpus
module Fault_transport = Dpu_faults.Fault_transport

type result = {
  scenario : Corpus.t;
  collector : Collector.t;
  correct : int list;
  reports : Dpu_props.Report.t list;
  switch_windows : (int * (float * float) option) list;
  sent : int;
  faults : Fault_transport.stats;
  counters : Transport.counters;
}

(* Virtual grace beyond [duration + drain] for retransmission cycles to
   finish after the last fault window closes — virtual time is cheap,
   and the property battery wants a quiescent trace. *)
let sim_grace_ms = 30_000.0

let run_sim ?(seed = 1) (sc : Corpus.t) =
  (match Corpus.validate sc with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Scenario.run_sim %s: %s" sc.name msg));
  let sim = Sim.create ~seed () in
  let net = Datagram.create sim ~n:sc.Corpus.n ~loss:0.0 ~link:Latency.lan () in
  let base = Dpu_runtime.Sim_backend.runtime sim net in
  (* The nemesis sits behind the Transport seam — the very same shim the
     live backend uses — so the schedule hits the protocols through the
     interface they actually talk to, not through simulator internals. *)
  let shim =
    Fault_transport.create ~seed:(seed + 0x5eed) ~schedule:sc.Corpus.schedule
      ~clock:(Runtime.clock base) (Runtime.transport base)
  in
  let runtime =
    Runtime.create ~clock:(Runtime.clock base)
      ~transport:(Fault_transport.transport shim) ~rng:(Runtime.rng base)
  in
  let system = System.of_runtime ~hop_cost:0.05 ~trace_enabled:false ~runtime
      ~n:sc.Corpus.n ()
  in
  let config =
    {
      MW.default_config with
      seed;
      profile =
        { Dpu_core.Stack_builder.default_profile with initial_abcast = sc.Corpus.initial };
      msg_size = 1_024;
      trace_enabled = false;
    }
  in
  let mw = MW.of_system ~config system in
  Load_gen.start mw ~rate_per_s:sc.Corpus.load ~until:sc.Corpus.duration_ms ();
  let clock = System.clock system in
  List.iter
    (fun (s : Corpus.switch) ->
      Clock.defer clock ~delay:s.Corpus.sw_at (fun () ->
          MW.change_protocol mw ~node:s.Corpus.sw_node s.Corpus.sw_to))
    sc.Corpus.switches;
  Sim.run ~until:(sc.Corpus.duration_ms +. sc.Corpus.drain_ms +. sim_grace_ms) sim;
  let collector = MW.collector mw in
  let correct = Corpus.correct_nodes sc in
  let reports = Dpu_props.Abcast_props.check_all collector ~correct in
  let switch_windows =
    List.mapi
      (fun i _ ->
        let generation = i + 1 in
        (generation, Collector.switch_window collector ~generation))
      sc.Corpus.switches
  in
  {
    scenario = sc;
    collector;
    correct;
    reports;
    switch_windows;
    sent = Collector.send_count collector;
    faults = Fault_transport.stats shim;
    counters = Fault_transport.counters shim;
  }

(* Canonical dump of everything the run observed; two runs are
   replay-identical iff their signatures are byte-equal. *)
let signature r =
  let buf = Buffer.create 4_096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "scenario %s seed-independent-dump\n" r.scenario.Corpus.name;
  List.iter
    (fun (id, node, time) ->
      add "send %s node %d @%.6f\n" (Msg.id_to_string id) node time)
    (Collector.sends r.collector);
  List.iter
    (fun node ->
      List.iter
        (fun (id, time) ->
          add "deliver node %d %s @%.6f\n" node (Msg.id_to_string id) time)
        (Collector.delivers_of r.collector ~node))
    (List.init r.scenario.Corpus.n Fun.id);
  List.iter
    (fun (node, generation, time) ->
      add "switch node %d gen %d @%.6f\n" node generation time)
    (Collector.switches r.collector);
  let f = r.faults in
  add "faults crash %d partition %d loss %d dup %d delayed %d rx %d\n"
    f.Fault_transport.blocked_crash f.Fault_transport.blocked_partition
    f.Fault_transport.injected_loss f.Fault_transport.injected_dup
    f.Fault_transport.delayed f.Fault_transport.rx_blocked;
  let c = r.counters in
  add "wire sent %d delivered %d dropped %d bytes %d\n" c.Transport.sent
    c.Transport.delivered c.Transport.dropped c.Transport.bytes;
  Buffer.contents buf

let ok r = Dpu_props.Report.all_ok r.reports
