(** Workload generators.

    The paper's benchmark (§6.2): messages of 4 KB are ABcast under a
    constant load by all machines. [Constant] reproduces that — each
    node broadcasts at [rate/n], with staggered phases so the aggregate
    is smooth. [Poisson] and [Burst] exist for the robustness tests and
    ablations. *)

type pattern =
  | Constant
  | Poisson
  | Burst of { period_ms : float; duty : float }
      (** all traffic compressed into a fraction [duty] of each period *)

val start :
  Dpu_core.Middleware.t ->
  rate_per_s:float ->
  ?pattern:pattern ->
  ?size:int ->
  ?body:string ->
  until:float ->
  unit ->
  unit
(** Schedule broadcasts on every node from now until virtual time
    [until] (ms). Total system rate is [rate_per_s]. *)

val send_n :
  Dpu_core.Middleware.t ->
  count:int ->
  ?gap_ms:float ->
  ?size:int ->
  ?warmup:int ->
  unit ->
  float
(** Round-robin [count] messages across nodes, one every [gap_ms]
    (default 10). Convenience for tests.

    [warmup] (default 0) schedules that many extra messages {e before}
    the counted ones, on the same cadence. Warmup traffic is recorded
    like any other (so the ABcast property checks still see it) but is
    meant to be excluded from latency statistics: the returned virtual
    time is the instant the first counted message is sent — pass it as
    [~lo] to {!Dpu_engine.Series.stats_between}. Cold-start sends pay
    for failure-detector arming and first-batch fill, which skews
    low-load latency points if counted. *)
