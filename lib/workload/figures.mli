(** Regeneration of every figure and headline number in the paper's
    evaluation (§6).

    We do not match the paper's absolute milliseconds (their prototype
    ran unoptimised Java on Pentium-III hardware); we reproduce the
    *shape* of each result: where the spike is and how long it lasts
    (Fig. 5), how latency grows with load and with n, and how small the
    replacement layer's overhead is (Fig. 6, ≈5 %). *)

(** {1 Figure 5} — latency of each ABcast vs. its send time; a
    replacement (CT → CT, all steps executed) is triggered mid-run.
    n = 7, 40 msg/s, 4 KB messages. *)

val figure5 : ?n:int -> ?load:float -> ?seed:int -> unit -> Experiment.result

val render_figure5 : Experiment.result -> string

(** {1 Figure 6} — average latency vs. load for n = 3 and n = 7:
    normal runs with and without the replacement layer, and messages
    sent during a replacement. *)

type fig6_point = {
  n : int;
  load : float;
  no_layer_ms : float;  (** normal, without replacement layer *)
  with_layer_ms : float;  (** normal, with replacement layer *)
  during_ms : float;  (** messages sent during the replacement *)
}

val figure6 :
  ?ns:int list ->
  ?loads:float list ->
  ?seed:int ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  fig6_point list
(** Each (n, load) pair is one {!Sweep} cell, fanned out to [jobs]
    worker processes (default {!Sweep.default_jobs}); results are
    bit-identical for every [jobs]. When [metrics] is given, every
    cell's experiment runs with metrics collection on and the
    per-worker snapshots are merged into [metrics]. *)

val figure6_sweep :
  ?ns:int list ->
  ?loads:float list ->
  ?seed:int ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  fig6_point Sweep.outcome
(** Like {!figure6} but exposing the sweep's timing stats and
    per-worker metrics snapshots. *)

val render_figure6 : fig6_point list -> string

(** {1 §6 headline numbers} *)

type headline = {
  layer_overhead_pct : float;  (** paper: ≈ 5 % *)
  spike_pct : float;  (** paper: ≈ 50 % *)
  spike_duration_ms : float;  (** paper: ≈ 1 s *)
  app_blocked_ms : float;  (** paper: never blocked (0) *)
}

val headline :
  ?n:int ->
  ?load:float ->
  ?seeds:int list ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  headline
(** Aggregated over [seeds] (default 1–5): one switch produces only a
    few during-window messages, so several runs give the statistic
    weight. Each seed is one {!Sweep} cell; the per-seed sample arrays
    are re-folded in seed order, so the aggregate is bit-identical for
    every [jobs]. *)

val headline_sweep :
  ?n:int ->
  ?load:float ->
  ?seeds:int list ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  headline * Sweep.stats

val render_headline : headline -> string

(** {1 Approach comparison} (the paper's §4.2/§5.3 claims, quantified) *)

type comparison_row = {
  approach : Experiment.approach;
  normal_ms : float;
  during_switch_ms : float;
  switch_duration : float;
  blocked : float;
  all_delivered : bool;
}

val compare_approaches :
  ?n:int ->
  ?load:float ->
  ?seed:int ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  comparison_row list
(** One {!Sweep} cell per approach. *)

val compare_approaches_sweep :
  ?n:int ->
  ?load:float ->
  ?seed:int ->
  ?jobs:int ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  comparison_row list * Sweep.stats

val render_comparison : comparison_row list -> string
