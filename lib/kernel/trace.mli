(** Kernel event trace.

    Every structural event (module added/removed, bind/unbind, call,
    blocked call, indication, crash) is recorded here, timestamped with
    virtual time. The checkers in [Dpu_props] consume these traces to
    verify the paper's §3 properties — stack-well-formedness and
    protocol-operationability — mechanically rather than on paper. *)

type kind =
  | Add_module of string  (** module name *)
  | Remove_module of string
  | Bind of string * string  (** service, module *)
  | Unbind of string * string  (** service, module *)
  | Call of string * string  (** service, payload summary *)
  | Call_blocked of string * string
      (** a call found no bound module and was queued *)
  | Call_unblocked of string  (** a queued call was released by a bind *)
  | Indication of string * string  (** service, payload summary *)
  | Crash
  | App of string * string  (** application-level tag, data *)

type entry = { time : float; node : int; kind : kind }

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] bounds memory (default 2_000_000 entries). Once
    reached, the trace behaves as a ring buffer: each new entry evicts
    the oldest, [truncated] becomes [true], and the most recent
    [capacity] entries are retained — long soaks keep the tail, where
    the interesting events are. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit

val record : t -> time:float -> node:int -> kind -> unit

val entries : t -> entry list
(** Retained entries in recording order (oldest retained first). *)

val length : t -> int
(** Number of retained entries (at most [capacity]). *)

val truncated : t -> bool
(** Whether any entry has been evicted. *)

val dropped : t -> int
(** Number of evicted (oldest) entries. *)

val filter : t -> (entry -> bool) -> entry list

val pp_entry : Format.formatter -> entry -> unit
