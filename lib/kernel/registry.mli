(** Module factories and recursive instantiation.

    Algorithm 1's [create_module] (lines 22–28) creates a protocol
    module, binds it, and then recursively creates providers for any
    required service that is not yet bound in the stack. The registry
    is the lookup table this needs: it maps protocol names and service
    names to factories.

    In the paper the [prot] argument of [changeABcast] is the new
    protocol itself (code). Here a protocol travels as its registered
    name, resolved against the registry of the receiving system — the
    same information content, shipped the same way (inside a totally
    ordered ABcast message). *)

type factory = Stack.t -> Stack.module_
(** A factory adds its module to the given stack and returns it. *)

type t

exception Unknown_protocol of string

exception No_provider of Service.t

exception Cyclic_requires of string list
(** A [requires] chain re-entered a protocol whose declared services
    never became bound, so recursive instantiation could not make
    progress. Carries the cycle (protocol names, rotated so the
    smallest name comes first — the same normal form
    [Dpu_analysis.Composition] reports). *)

val create : unit -> t

val register :
  t ->
  name:string ->
  provides:Service.t list ->
  ?requires:Service.t list ->
  ?spec:Spec.t ->
  factory ->
  unit
(** Register a protocol under [name]. Registering the same name again
    replaces the previous factory (used to stage protocol versions).
    [requires] (default [[]]) declares the services the factory's
    module will ask for; it is introspection metadata for the static
    analyser ({!requires_of}) and does not affect instantiation, which
    always resolves the module's actual requirements. [spec] declares
    the protocol's behaviour ({!Spec.t}) for the behavioural
    safe-update checker; like [requires] it is pure metadata. *)

val names : t -> string list

val mem : t -> name:string -> bool

val provider_of : t -> Service.t -> string option
(** Name of the most recently registered protocol providing the
    service. *)

val provides_of : t -> name:string -> Service.t list option
(** Declared provided services of a registered protocol. *)

val requires_of : t -> name:string -> Service.t list option
(** Declared required services of a registered protocol. *)

val spec_of : t -> name:string -> Spec.t option
(** Declared behavioural spec of a registered protocol, if any. *)

val canonical_cycle : string list -> string list
(** Normal form of a dependency cycle: rotated so the smallest name
    comes first. {!Cyclic_requires} carries cycles in this form, and
    the static verifier reports them in the same form, so the two can
    be compared directly. *)

val cycle_string : string list -> string
(** Render a cycle with its closing edge — ["a -> b -> a"] for
    [["a"; "b"]] — so reports show the full cycle, not just the path.
    Both the {!Cyclic_requires} exception printer and the static
    verifier's findings use this form. *)

val instantiate : t -> Stack.t -> name:string -> Stack.module_
(** [create_module] of Algorithm 1: create the named module, bind it to
    each of its provided services that has no current binding, then
    recursively ensure every required service has a bound provider.
    Raises {!Unknown_protocol}, {!No_provider}, or {!Cyclic_requires}
    (when a requirement chain loops without binding progress). *)

val ensure_bound : t -> Stack.t -> Service.t -> unit
(** Instantiate a provider chain for [service] unless one is already
    bound. *)

val create_only : t -> Stack.t -> name:string -> Stack.module_
(** Run the factory without binding anything and without resolving
    required services. This models systems that *cannot* create
    providers for new dependencies (the paper's §4.2 criticism of
    Graceful Adaptation: an alternative component may only use the
    services its host module already requires). Raises
    {!Unknown_protocol}. *)
