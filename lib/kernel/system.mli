(** A distributed system: [n] protocol stacks over one datagram network.

    Owns the simulator, the network, the shared kernel trace and the
    protocol registry. Builders (e.g. [Dpu_core.Stack_builder]) populate
    each stack with modules. *)

type t

val create :
  ?seed:int ->
  ?loss:float ->
  ?dup:float ->
  ?link:Dpu_net.Latency.link ->
  ?hop_cost:float ->
  ?trace_enabled:bool ->
  ?metrics:Dpu_obs.Metrics.t ->
  n:int ->
  unit ->
  t
(** [metrics] (default {!Dpu_obs.Metrics.noop}) is wired into the
    simulator, the network and every stack; protocol modules reach it
    through [Stack.metrics]. *)

val n : t -> int

val sim : t -> Dpu_engine.Sim.t

val net : t -> Payload.t Dpu_net.Datagram.t

val trace : t -> Trace.t

val metrics : t -> Dpu_obs.Metrics.t

val registry : t -> Registry.t

val stacks : t -> Stack.t array

val stack : t -> int -> Stack.t

val iter_stacks : t -> (Stack.t -> unit) -> unit

val crash_node : t -> int -> unit
(** Fail-stop the stack and silence its network endpoint. *)

val correct_nodes : t -> int list

val now : t -> float

val run_for : t -> float -> unit

val run_until : t -> float -> unit

val run_until_quiescent : ?limit:float -> t -> unit
(** Drain all pending events, or stop at virtual time [limit]. *)
