(** A distributed system: [n] protocol stacks over one runtime.

    Owns the runtime (clock + transport + RNG), the shared kernel trace
    and the protocol registry. Builders (e.g. [Dpu_core.Stack_builder])
    populate each stack with modules.

    Two deployment shapes exist:

    - {!create} builds the classic {e simulated} deployment: a
      discrete-event simulator, a simulated datagram network, and all
      [n] stacks living in this process. Bit-identical to the
      pre-runtime behaviour.
    - {!of_runtime} wraps an externally supplied runtime (e.g. the
      live-clock/UDP backend), where typically only {e one} node of the
      [n]-node system is local to this process. Non-local slots have no
      stack; {!stack} on them raises. *)

type t

val create :
  ?seed:int ->
  ?loss:float ->
  ?dup:float ->
  ?link:Dpu_net.Latency.link ->
  ?hop_cost:float ->
  ?trace_enabled:bool ->
  ?metrics:Dpu_obs.Metrics.t ->
  n:int ->
  unit ->
  t
(** Simulated deployment. [metrics] (default {!Dpu_obs.Metrics.noop})
    is wired into the simulator, the network and every stack; protocol
    modules reach it through [Stack.metrics]. *)

val of_runtime :
  ?hop_cost:float ->
  ?trace_enabled:bool ->
  ?metrics:Dpu_obs.Metrics.t ->
  ?local:int list ->
  runtime:Payload.t Dpu_runtime.Runtime.t ->
  n:int ->
  unit ->
  t
(** External deployment over a caller-supplied runtime. [local]
    (default: all of [0..n-1]) lists the nodes whose stacks live in
    this process. *)

val of_sim :
  ?group_id:int ->
  ?hop_cost:float ->
  ?trace_enabled:bool ->
  ?metrics:Dpu_obs.Metrics.t ->
  runtime:Payload.t Dpu_runtime.Runtime.t ->
  sim:Dpu_engine.Sim.t ->
  net:Payload.t Dpu_net.Datagram.t ->
  n:int ->
  unit ->
  t
(** One {e group} of a multi-group fabric: a simulated deployment over
    a caller-built simulator, network and runtime, so many systems can
    share ONE [Sim.t] (each with its own network, registry, trace and
    generations). Unlike {!create} nothing is registered on [metrics] —
    a fabric shares one registry across groups and per-group kernel
    series are told apart by the [group=g] label that [group_id] adds
    via [Stack.create]. The driving calls ({!run_for}, …) advance the
    {e shared} simulator. *)

val n : t -> int

val group_id : t -> int option
(** The fabric group this system is a member of ([None] outside a
    fabric). *)

val runtime : t -> Payload.t Dpu_runtime.Runtime.t

val clock : t -> Dpu_runtime.Clock.t

val transport : t -> Payload.t Dpu_runtime.Transport.t

val rng : t -> Dpu_engine.Rng.t
(** The runtime's root PRNG (the simulator's root under {!create}). *)

val net : t -> Payload.t Dpu_net.Datagram.t
(** The simulated datagram network — for fault injection and
    link-level twiddling in experiments. Raises [Invalid_argument] on
    an {!of_runtime} deployment. *)

val is_simulated : t -> bool

val trace : t -> Trace.t

val metrics : t -> Dpu_obs.Metrics.t

val registry : t -> Registry.t

val local_nodes : t -> int list
(** Nodes whose stacks live in this process (all nodes under
    {!create}). *)

val stacks : t -> Stack.t array
(** The local stacks, in node order. *)

val stack : t -> int -> Stack.t
(** Raises [Invalid_argument] if the node is not local. *)

val iter_stacks : t -> (Stack.t -> unit) -> unit
(** Iterate the local stacks. *)

val crash_node : t -> int -> unit
(** Fail-stop the stack and (in a simulated deployment) silence its
    network endpoint. *)

val correct_nodes : t -> int list

val now : t -> float

(** {1 Driving a simulated deployment}

    These raise [Invalid_argument] on {!of_runtime} deployments — a
    live runtime advances on its own. *)

val run_for : t -> float -> unit

val run_until : t -> float -> unit

val run_until_quiescent : ?limit:float -> t -> unit
(** Drain all pending events, or stop at virtual time [limit]. *)
