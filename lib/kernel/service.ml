type t = string

let make name = name

let name t = t

let equal = String.equal

let compare = String.compare

let hash = String.hash

let pp ppf t = Format.pp_print_string ppf t

let net = "net"
let rp2p = "rp2p"
let fd = "fd"
let consensus = "consensus"
let abcast = "abcast"
let r_abcast = "r-abcast"
let gm = "gm"

module Map = Map.Make (String)
module Set = Set.Make (String)
