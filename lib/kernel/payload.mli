(** Open payload type for service calls, indications and datagrams.

    Each protocol extends [t] with its own constructors, so modules
    sharing a service (e.g. everything multiplexed over [net]) simply
    pattern-match on their own constructors and ignore the rest. This
    mirrors the untyped event model of SAMOA/Appia protocol kernels
    while staying allocation-cheap and printable.

    Alongside the printer registry, protocols may register a {e wire
    codec} for their constructors. Codecs are only exercised by
    backends that serialise messages (the live UDP transport); the
    simulated backend passes payload values by reference and never
    touches them, so registering a codec has zero effect on simulated
    runs. *)

type t = ..

type t += Unit  (** a payload carrying no information *)

val register_printer : (t -> string option) -> unit
(** Add a printer for some constructors; printers are tried most recent
    first. *)

val to_string : t -> string
(** Best-effort rendering (["<payload>"] if no printer matches). *)

val pp : Format.formatter -> t -> unit

(** {1 Wire codecs} *)

exception Decode_error of string
(** Raised by {!decode} / {!Envelope.open_} on any malformed input:
    unknown tag, truncated body, trailing garbage, bad magic. *)

val register_codec :
  tag:string ->
  encode:(t -> (Wire.W.t -> unit) option) ->
  decode:(Wire.R.t -> t) ->
  unit
(** Register a binary codec for some constructors. [tag] (1..255
    bytes) names the frame on the wire and must be globally unique —
    duplicate registration raises [Invalid_argument]. [encode] returns
    [Some write] when the payload belongs to this codec; [write] emits
    the body. [decode] parses the body and must consume it entirely
    ({!decode} rejects frames with leftover bytes).

    To nest a payload inside another (batches, wrappers), encode it
    with [Wire.W.str (Payload.encode_exn inner)] and decode with
    [Payload.decode (Wire.R.str r)]. *)

val encode : t -> string option
(** Frame the payload with the first codec (most recent first) that
    claims it: [u8 tag-length][tag][body]. [None] if no codec
    matches. *)

val encode_into : Wire.W.t -> t -> bool
(** Like {!encode} but appends the frame to an existing writer —
    the zero-allocation path for transports that reuse a scratch
    buffer. Returns [false] (writing nothing) if no codec matches. *)

val encode_exn : t -> string
(** Like {!encode} but raises [Invalid_argument] when no codec is
    registered for the payload. *)

val decode : string -> t
(** Inverse of {!encode}; raises {!Decode_error} on unknown tags,
    truncated frames or trailing bytes. *)

val decode_slice : ?off:int -> ?len:int -> Bytes.t -> t
(** {!decode} over a byte-slice without copying it out first (see
    {!Wire.R.of_bytes} for the aliasing rule: don't overwrite [buf]
    until decoding finishes). *)

val has_codec : t -> bool

val registered_tags : unit -> string list
(** All registered codec tags, sorted — for diagnostics and tests. *)

(** Versioned datagram envelope used by wire transports. A sealed
    envelope carries enough routing metadata ([src] node, [service]
    name, protocol [generation]) for a receiving node to dispatch the
    payload without out-of-band context. *)
module Envelope : sig
  type info = { src : int; service : string; generation : int }

  val version : int
  (** Version 1: a single payload per datagram. *)

  val batch_version : int
  (** Version 2: a batch frame — same header, then
      [count] [u32 len][tag body] elements. Additive: version-1-only
      readers reject it as an unsupported version; {!open_slice}
      accepts both. *)

  val header_overhead : service:string -> int
  (** Exact byte size of the envelope header (magic through
      generation) — lets transports budget batch frames against the
      datagram MTU without encoding first. *)

  val seal : src:int -> service:string -> generation:int -> t -> string
  (** Raises [Invalid_argument] if the payload has no codec. *)

  val seal_encoded : src:int -> service:string -> generation:int -> string -> string
  (** Like {!seal} on a body already produced by {!encode} — lets hot
      paths that must first probe for a codec reuse the encoded bytes
      instead of encoding twice. *)

  val seal_into :
    Wire.W.t -> src:int -> service:string -> generation:int -> Wire.W.t -> unit
  (** Append a version-1 frame to the first writer, taking the
      already-encoded payload frame from the second — the scratch-buffer
      send path: no intermediate strings. *)

  val seal_batch_into :
    Wire.W.t ->
    src:int ->
    service:string ->
    generation:int ->
    count:int ->
    Wire.W.t ->
    unit
  (** Append a version-2 batch frame: header, [count], then the second
      writer's contents, which must hold exactly [count] elements each
      written with [Wire.W.str_writer]. Raises [Invalid_argument] when
      [count <= 0] — an empty batch is never put on the wire. *)

  val seal_batch : src:int -> service:string -> generation:int -> t list -> string
  (** Allocating convenience over {!seal_batch_into} (tests, tools).
      Raises [Invalid_argument] on an empty list or a payload with no
      codec. *)

  val open_ : string -> info * t
  (** Raises {!Decode_error} on bad magic, unsupported version, or any
      framing error — including a multi-payload batch frame, which
      cannot be flattened to a single payload. *)

  val open_slice : ?off:int -> ?len:int -> Bytes.t -> info * t list
  (** Decode a version-1 (singleton list) or version-2 (one payload per
      batch element, in order) envelope in place over a byte-slice.
      Strict like {!open_}: any framing error, including a partially
      valid batch, rejects the whole datagram — a batch is accepted or
      dropped atomically. *)
end
