(** Protocol stacks: modules, dynamic bindings, call/indication dispatch.

    This implements the composition model of §2 of the paper:

    - a {e stack} is the set of modules located on one machine;
    - a module may be dynamically {e bound} to a service it provides
      and later unbound; unbinding does not remove the module;
    - at most one module per stack is bound to a service at a time;
    - a {e service call} executes the module bound to the service; if
      no module is bound the call is blocked (queued) until some module
      is bound — this realises weak stack-well-formedness;
    - an {e indication} (a response to a call, flowing upward) is
      delivered to every module of the stack that requires the service;
      a module can emit indications even after being unbound (§2:
      “a module Qi can respond to a service call even if Qi has been
      unbound”).

    Dispatch is asynchronous through the runtime {!Dpu_runtime.Clock}
    and each hop costs [hop_cost] milliseconds (virtual under the
    simulated backend, wall-clock under the live one), standing in for
    per-module processing cost; the ≈5 % overhead of the replacement
    layer in the paper's Fig. 6 emerges from this. The stack never
    touches the simulator directly — it runs unchanged on any clock
    backend. *)

type t

type module_

type handlers = {
  handle_call : Service.t -> Payload.t -> unit;
      (** invoked when this module is bound to the called service *)
  handle_indication : Service.t -> Payload.t -> unit;
      (** invoked when a service this module requires emits an
          indication; non-matching payloads must be ignored *)
  on_start : unit -> unit;  (** after the module is added to the stack *)
  on_stop : unit -> unit;  (** when the module is removed *)
}

val default_handlers : handlers
(** All no-ops. *)

val create :
  clock:Dpu_runtime.Clock.t ->
  node:int ->
  ?group:int ->
  ?hop_cost:float ->
  trace:Trace.t ->
  ?metrics:Dpu_obs.Metrics.t ->
  unit ->
  t
(** A stack for machine [node]. [hop_cost] defaults to [0.05] ms.
    [metrics] (default {!Dpu_obs.Metrics.noop}) receives the per-node
    kernel series ([kernel_calls_total], [kernel_calls_blocked_total],
    [kernel_binds_total], …, all labelled [node=i], plus the
    [kernel_blocked_call_ms] histogram) and is exposed to modules via
    {!metrics} so protocol layers can register their own series.
    [group] adds a [group=g] label to every series — node ids repeat
    across the groups of a fabric, so the label keeps their series
    apart on a shared registry. *)

val node : t -> int

val clock : t -> Dpu_runtime.Clock.t

val now : t -> float
(** Current time on the stack's clock, in milliseconds. *)

val trace : t -> Trace.t

val metrics : t -> Dpu_obs.Metrics.t
(** The registry passed at creation ({!Dpu_obs.Metrics.noop} when
    observability is off — instruments created against it are free). *)

val hop_cost : t -> float

val crash : t -> unit
(** Fail-stop: all subsequent dispatch, timers and sends are dropped. *)

val is_crashed : t -> bool

(** {1 Modules} *)

val add_module :
  t ->
  name:string ->
  provides:Service.t list ->
  requires:Service.t list ->
  (t -> module_ -> handlers) ->
  module_
(** Create a module and add it to the stack. The init function receives
    the stack and the module itself (so handlers can close over both)
    and returns the handlers; [on_start] runs immediately after. *)

val remove_module : t -> module_ -> unit
(** Run [on_stop], drop the module, and unbind any service still bound
    to it. *)

val modules : t -> module_ list
(** Modules currently in the stack, in addition order. *)

val module_name : module_ -> string

val module_provides : module_ -> Service.t list

val module_requires : module_ -> Service.t list

val has_module : t -> name:string -> bool

val find_module : t -> name:string -> module_ option

(** {1 Bindings} *)

exception Already_bound of Service.t

val bind : t -> Service.t -> module_ -> unit
(** Bind a module to a service it provides. Raises {!Already_bound} if
    another module is currently bound (unbind first — Algorithm 1
    line 12 does exactly that). Queued blocked calls for the service
    are released. *)

val unbind : t -> Service.t -> unit
(** Remove the current binding, if any. The module stays in the stack. *)

val bound : t -> Service.t -> module_ option

val blocked_calls : t -> Service.t -> int
(** Number of calls currently queued on an unbound service. *)

(** {1 Interactions} *)

val call : t -> Service.t -> Payload.t -> unit
(** Service call: executes the bound module after one hop; queued if
    the service is unbound. *)

val indicate : t -> Service.t -> Payload.t -> unit
(** Response/indication: delivered after one hop to every module
    requiring the service (membership evaluated at delivery time). *)

val app_event : t -> tag:string -> data:string -> unit
(** Record an application-level trace entry (used by monitors and by
    the property checkers). *)

val dispatch_counts : t -> int * int
(** [(calls, indications)] executed so far — the per-stack dispatch
    work, each unit costing [hop_cost]. The measured overhead of a
    layer is its share of these hops. *)

(** {1 Module-creation environment}

    A small per-stack key/value store used to pass context from the
    code that instantiates a module (e.g. the replacement module, which
    knows the new protocol generation number) to registry factories,
    which take only the stack as argument. *)

val set_env : t -> string -> int -> unit

val get_env : t -> string -> default:int -> int

(** {1 Timers} *)

val after : t -> delay:float -> (unit -> unit) -> Dpu_runtime.Clock.timer
(** One-shot timer that is suppressed if the stack has crashed by the
    time it fires. Cancel with {!Dpu_runtime.Clock.cancel}. *)

val periodic : t -> period:float -> (unit -> unit) -> Dpu_runtime.Clock.timer
(** Periodic timer, stopped by cancellation or by a crash. *)
