type kind =
  | Add_module of string
  | Remove_module of string
  | Bind of string * string
  | Unbind of string * string
  | Call of string * string
  | Call_blocked of string * string
  | Call_unblocked of string
  | Indication of string * string
  | Crash
  | App of string * string

type entry = { time : float; node : int; kind : kind }

(* Bounded ring buffer over [buf]: the [n] retained entries start at
   index [start] (oldest) and wrap modulo the array length. The array
   grows geometrically up to [capacity]; once full, recording
   overwrites the oldest entry, so a long soak keeps the most recent —
   i.e. the interesting — tail of the trace. *)
type t = {
  mutable enabled : bool;
  capacity : int;
  mutable buf : entry array;
  mutable start : int;
  mutable n : int;
  mutable dropped : int;
}

let create ?(enabled = true) ?(capacity = 2_000_000) () =
  assert (capacity > 0);
  { enabled; capacity; buf = [||]; start = 0; n = 0; dropped = 0 }

let enabled t = t.enabled

let set_enabled t b = t.enabled <- b

let record t ~time ~node kind =
  if t.enabled then begin
    let cap = Array.length t.buf in
    if t.n = cap && cap < t.capacity then begin
      let cap' = Stdlib.min t.capacity (Stdlib.max 64 (cap * 2)) in
      let dummy = { time; node; kind } in
      let buf' = Array.make cap' dummy in
      for i = 0 to t.n - 1 do
        buf'.(i) <- t.buf.((t.start + i) mod cap)
      done;
      t.buf <- buf';
      t.start <- 0
    end;
    let cap = Array.length t.buf in
    if t.n < cap then begin
      t.buf.((t.start + t.n) mod cap) <- { time; node; kind };
      t.n <- t.n + 1
    end
    else begin
      t.buf.(t.start) <- { time; node; kind };
      t.start <- (t.start + 1) mod cap;
      t.dropped <- t.dropped + 1
    end
  end

let entries t =
  let cap = Array.length t.buf in
  List.init t.n (fun i -> t.buf.((t.start + i) mod cap))

let length t = t.n

let truncated t = t.dropped > 0

let dropped t = t.dropped

let filter t p = List.filter p (entries t)

let kind_to_string = function
  | Add_module m -> Printf.sprintf "add-module %s" m
  | Remove_module m -> Printf.sprintf "remove-module %s" m
  | Bind (s, m) -> Printf.sprintf "bind %s -> %s" s m
  | Unbind (s, m) -> Printf.sprintf "unbind %s -/- %s" s m
  | Call (s, p) -> Printf.sprintf "call %s [%s]" s p
  | Call_blocked (s, p) -> Printf.sprintf "call-blocked %s [%s]" s p
  | Call_unblocked s -> Printf.sprintf "call-unblocked %s" s
  | Indication (s, p) -> Printf.sprintf "indication %s [%s]" s p
  | Crash -> "crash"
  | App (tag, data) -> Printf.sprintf "app %s [%s]" tag data

let pp_entry ppf e =
  Format.fprintf ppf "%10.3f n%d %s" e.time e.node (kind_to_string e.kind)
