type factory = Stack.t -> Stack.module_

type entry = {
  e_name : string;
  e_provides : Service.t list;
  e_requires : Service.t list;  (* declared; what the factory's module asks for *)
  e_spec : Spec.t option;  (* declared behaviour; metadata for the analyser *)
  e_factory : factory;
}

type t = { mutable entries : entry list (* most recent first *) }

exception Unknown_protocol of string

exception No_provider of Service.t

exception Cyclic_requires of string list

let create () = { entries = [] }

let register t ~name ~provides ?(requires = []) ?spec factory =
  t.entries <-
    {
      e_name = name;
      e_provides = provides;
      e_requires = requires;
      e_spec = spec;
      e_factory = factory;
    }
    :: List.filter (fun e -> not (String.equal e.e_name name)) t.entries

let names t = List.rev_map (fun e -> e.e_name) t.entries

let mem t ~name = List.exists (fun e -> String.equal e.e_name name) t.entries

let find t name = List.find_opt (fun e -> String.equal e.e_name name) t.entries

let provider_of t svc =
  match
    List.find_opt (fun e -> List.exists (Service.equal svc) e.e_provides) t.entries
  with
  | Some e -> Some e.e_name
  | None -> None

let provides_of t ~name = Option.map (fun e -> e.e_provides) (find t name)

let requires_of t ~name = Option.map (fun e -> e.e_requires) (find t name)

let spec_of t ~name = Option.bind (find t name) (fun e -> e.e_spec)

(* Canonical form of a cycle: rotated so the smallest name comes first.
   The static verifier ([Dpu_analysis.Composition]) normalises the same
   way, so the dynamic exception and the static finding agree. *)
let canonical_cycle names =
  match names with
  | [] -> []
  | _ ->
    let arr = Array.of_list names in
    let len = Array.length arr in
    let best = ref 0 in
    for i = 1 to len - 1 do
      if String.compare arr.(i) arr.(!best) < 0 then best := i
    done;
    List.init len (fun i -> arr.((!best + i) mod len))

(* Render a canonical cycle with its closing edge ("a -> b -> a"), so
   the message reads as a cycle rather than a chain. *)
let cycle_string = function
  | [] -> "<empty cycle>"
  | first :: _ as cycle -> String.concat " -> " (cycle @ [ first ])

let () =
  Printexc.register_printer (function
    | Cyclic_requires cycle ->
      Some (Printf.sprintf "Registry.Cyclic_requires(%s)" (cycle_string cycle))
    | Unknown_protocol name ->
      Some (Printf.sprintf "Registry.Unknown_protocol(%S)" name)
    | No_provider svc ->
      Some (Printf.sprintf "Registry.No_provider(%s)" (Service.name svc))
    | _ -> None)

(* Binding the new module's provided services *before* recursing on its
   requirements makes honest cyclic service graphs terminate: by the
   time a dependency loops back, the service is already bound. The
   [building] path catches the remaining case — re-entering a protocol
   whose declared services are still unbound (its factory did not bind
   what it promised), which would otherwise recurse forever. *)
let rec instantiate_aux t stack ~building ~name =
  if List.mem name building then begin
    (* [building] is the reversed path from the entry point; the cycle
       is [name] plus everything built since we first entered it. *)
    let rec upto acc = function
      | [] -> acc
      | n :: _ when String.equal n name -> acc
      | n :: rest -> upto (n :: acc) rest
    in
    raise (Cyclic_requires (canonical_cycle (name :: upto [] building)))
  end;
  match find t name with
  | None -> raise (Unknown_protocol name)
  | Some e ->
    let m = e.e_factory stack in
    List.iter
      (fun svc ->
        match Stack.bound stack svc with
        | None -> Stack.bind stack svc m
        | Some _ -> ())
      (Stack.module_provides m);
    List.iter
      (fun svc -> ensure_bound_aux t stack ~building:(name :: building) svc)
      (Stack.module_requires m);
    m

and ensure_bound_aux t stack ~building svc =
  match Stack.bound stack svc with
  | Some _ -> ()
  | None -> (
    match provider_of t svc with
    | None -> raise (No_provider svc)
    | Some name ->
      ignore (instantiate_aux t stack ~building ~name : Stack.module_))

let instantiate t stack ~name = instantiate_aux t stack ~building:[] ~name

let ensure_bound t stack svc = ensure_bound_aux t stack ~building:[] svc

let create_only t stack ~name =
  match find t name with
  | None -> raise (Unknown_protocol name)
  | Some e -> e.e_factory stack
