(** Binary wire primitives for the payload codec registry.

    A tiny, dependency-free length-prefixed binary format: fixed-width
    little-endian integers, IEEE-754 floats, and u32-length-prefixed
    strings. Codecs ({!Payload.register_codec}) compose these; frames
    nest by encoding an inner frame with [W.str], or — on the zero-copy
    path — by appending another writer with [W.str_writer] and decoding
    in place with [R.sub].

    Readers are strict: reading past the end of the buffer raises
    {!Error}, which {!Payload.decode} converts into a rejected frame —
    a truncated datagram never produces a value. *)

exception Error of string
(** Malformed or truncated input. *)

(** Writer: append-only buffer. *)
module W : sig
  type t

  val create : ?initial_size:int -> unit -> t

  val reset : t -> unit
  (** Empty the writer, keeping its allocation — the scratch-buffer
      idiom: one long-lived writer reused across frames. *)

  val length : t -> int
  (** Bytes written so far. *)

  val u8 : t -> int -> unit
  (** [0 .. 255]; asserts the range. *)

  val int : t -> int -> unit
  (** Full OCaml int, signed 64-bit little-endian. *)

  val bool : t -> bool -> unit

  val float : t -> float -> unit

  val raw : t -> string -> unit
  (** Bytes with no length prefix — for fixed-size fields like magic
      numbers and tags whose length is known from context. *)

  val str : t -> string -> unit
  (** u32 length then bytes. *)

  val opt : t -> (t -> 'a -> unit) -> 'a option -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u32 count then elements, in order. *)

  val add_writer : t -> t -> unit
  (** Append the second writer's contents, no length prefix and no
      intermediate string. *)

  val str_writer : t -> t -> unit
  (** u32 length of the second writer's contents, then the contents —
      [str] without materialising the string. Pairs with {!R.u32} +
      {!R.sub} for in-place decoding. *)

  val contents : t -> string

  val blit_to_bytes : t -> Bytes.t -> int
  (** Copy the writer's contents into the front of the buffer and
      return the length; raises {!Error} if it does not fit. The
      syscall-boundary primitive: one blit, no fresh allocation. *)
end

(** Reader: cursor over a string or byte-slice; every read may raise
    {!Error}. *)
module R : sig
  type t

  val of_string : string -> t

  val of_bytes : ?off:int -> ?len:int -> Bytes.t -> t
  (** Zero-copy reader over a slice of [buf] ([len] defaults to the rest
      of the buffer). The reader aliases [buf] without copying: it must
      not be used after [buf] is next overwritten (e.g. the transport's
      receive scratch buffer on the following [recvfrom]). Values
      returned by [str]/[raw] are copies and safe to retain. *)

  val u8 : t -> int

  val int : t -> int

  val bool : t -> bool

  val float : t -> float

  val u32 : t -> int
  (** A u32 length/count field by itself — the prefix written by
      [W.str]/[W.str_writer] — leaving the body in place for {!sub}. *)

  val raw : t -> int -> string
  (** Exactly that many bytes, no length prefix. *)

  val str : t -> string

  val opt : t -> (t -> 'a) -> 'a option

  val list : t -> (t -> 'a) -> 'a list

  val sub : t -> int -> t
  (** A bounded reader over the next [len] bytes, sharing the underlying
      buffer (no copy); the parent cursor advances past them. The child
      has its own end: [expect_end] on it checks the sub-frame, not the
      whole input. *)

  val at_end : t -> bool

  val expect_end : t -> unit
  (** Raise {!Error} unless the whole input was consumed — trailing
      garbage is rejected, not ignored. *)
end
