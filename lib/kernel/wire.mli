(** Binary wire primitives for the payload codec registry.

    A tiny, dependency-free length-prefixed binary format: fixed-width
    little-endian integers, IEEE-754 floats, and u32-length-prefixed
    strings. Codecs ({!Payload.register_codec}) compose these; frames
    nest by encoding an inner frame with [W.str].

    Readers are strict: reading past the end of the buffer raises
    {!Error}, which {!Payload.decode} converts into a rejected frame —
    a truncated datagram never produces a value. *)

exception Error of string
(** Malformed or truncated input. *)

(** Writer: append-only buffer. *)
module W : sig
  type t

  val create : ?initial_size:int -> unit -> t

  val u8 : t -> int -> unit
  (** [0 .. 255]; asserts the range. *)

  val int : t -> int -> unit
  (** Full OCaml int, signed 64-bit little-endian. *)

  val bool : t -> bool -> unit

  val float : t -> float -> unit

  val raw : t -> string -> unit
  (** Bytes with no length prefix — for fixed-size fields like magic
      numbers and tags whose length is known from context. *)

  val str : t -> string -> unit
  (** u32 length then bytes. *)

  val opt : t -> (t -> 'a -> unit) -> 'a option -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u32 count then elements, in order. *)

  val contents : t -> string
end

(** Reader: cursor over a string; every read may raise {!Error}. *)
module R : sig
  type t

  val of_string : string -> t

  val u8 : t -> int

  val int : t -> int

  val bool : t -> bool

  val float : t -> float

  val raw : t -> int -> string
  (** Exactly that many bytes, no length prefix. *)

  val str : t -> string

  val opt : t -> (t -> 'a) -> 'a option

  val list : t -> (t -> 'a) -> 'a list

  val at_end : t -> bool

  val expect_end : t -> unit
  (** Raise {!Error} unless the whole input was consumed — trailing
      garbage is rejected, not ignored. *)
end
