type id = { origin : int; seq : int }

type t = { id : id; size : int; body : string }

let id_compare a b =
  let c = compare a.origin b.origin in
  if c <> 0 then c else compare a.seq b.seq

let id_equal a b = id_compare a b = 0

let id_to_string { origin; seq } = Printf.sprintf "%d.%d" origin seq

let compare a b = id_compare a.id b.id

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "msg(%s,%dB)" (id_to_string t.id) t.size

let make ~origin ~seq ?(size = 4096) body = { id = { origin; seq }; size; body }

let write_id w { origin; seq } =
  Wire.W.int w origin;
  Wire.W.int w seq

let read_id r =
  let origin = Wire.R.int r in
  let seq = Wire.R.int r in
  { origin; seq }

let write w { id; size; body } =
  write_id w id;
  Wire.W.int w size;
  Wire.W.str w body

let read r =
  let id = read_id r in
  let size = Wire.R.int r in
  let body = Wire.R.str r in
  { id; size; body }

module Id_ord = struct
  type t = id

  let compare = id_compare
end

module Id_map = Map.Make (Id_ord)
module Id_set = Set.Make (Id_ord)

module Self_ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Self_ord)
