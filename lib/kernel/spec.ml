(* Behavioural protocol specifications; see spec.mli. *)

type obligation =
  | Total_order
  | Exactly_once
  | Validity
  | Gap_free_gseq
  | Epoch_flush
  | Fifo_order
  | Causal_order

let obligation_name = function
  | Total_order -> "total-order"
  | Exactly_once -> "exactly-once"
  | Validity -> "validity"
  | Gap_free_gseq -> "gap-free-gseq"
  | Epoch_flush -> "epoch-flush"
  | Fifo_order -> "fifo-order"
  | Causal_order -> "causal-order"

type capability =
  | Reissue_undelivered
  | Generation_filter
  | Quiesce_before_switch
  | Epoch_tagged_wire
  | Epoch_flush_on_supersede
  | Buffer_future_epoch
  | Slot_scoped_rounds

let capability_name = function
  | Reissue_undelivered -> "reissue-undelivered"
  | Generation_filter -> "generation-filter"
  | Quiesce_before_switch -> "quiesce-before-switch"
  | Epoch_tagged_wire -> "epoch-tagged-wire"
  | Epoch_flush_on_supersede -> "epoch-flush-on-supersede"
  | Buffer_future_epoch -> "buffer-future-epoch"
  | Slot_scoped_rounds -> "slot-scoped-rounds"

type kind = { k_name : string; k_role : string; k_payload : bool }

let kind ?(payload = false) ~role k_name =
  { k_name; k_role = role; k_payload = payload }

type label =
  | Accept
  | Emit of string
  | Recv of string
  | Aggregate of string
  | Flush of string
  | Deliver

type transition = { t_from : string; t_label : label; t_to : string }

let t t_from t_label t_to = { t_from; t_label; t_to }

type t = {
  s_service : string;
  s_roles : string list;
  s_kinds : kind list;
  s_init : string;
  s_transitions : transition list;
  s_obligations : obligation list;
  s_capabilities : capability list;
  s_opaque : string option;
}

let make ~service ?(roles = []) ?(kinds = []) ?(init = "idle") ?(transitions = [])
    ?(obligations = []) ?(capabilities = []) () =
  {
    s_service = service;
    s_roles = roles;
    s_kinds = kinds;
    s_init = init;
    s_transitions = transitions;
    s_obligations = obligations;
    s_capabilities = capabilities;
    s_opaque = None;
  }

let opaque ~service reason = { (make ~service ()) with s_opaque = Some reason }

let is_opaque spec = Option.is_some spec.s_opaque

let has spec cap = List.mem cap spec.s_capabilities

let obliges spec obl = List.mem obl spec.s_obligations

let kind_named spec name =
  List.find_opt (fun k -> String.equal k.k_name name) spec.s_kinds
