(** Behavioural specifications of shipped protocols.

    The registry's [provides]/[requires] metadata describes the
    {e structure} of a protocol; this module describes its
    {e behaviour}: which roles exchange which message kinds, as a small
    labelled transition system over the life of one broadcast, plus the
    ordering/delivery obligations the protocol promises its callers and
    the update-time capabilities its implementation actually has
    (epoch-tagged wire traffic, batch flush on supersession, ...).

    Specs are declared at each [Registry.register] site, next to the
    structural metadata, and consumed by the static safe-update checker
    ([Dpu_analysis.Behaviour]): the checker unfolds the old protocol's
    spec once (what can be in flight at the switch point), combines the
    unfolding with the new protocol's spec, and verifies that every
    obligation is still discharged across the swap — the 1-unfolding /
    combining construction of Castro-Perez & Yoshida's DMst, scaled
    down to the stack at hand.

    The type lives in the kernel so that protocol libraries can declare
    specs without depending on the analysis library. *)

(** What a protocol promises the modules above it. *)
type obligation =
  | Total_order  (** all nodes deliver in the same order *)
  | Exactly_once  (** no duplicate deliveries *)
  | Validity  (** an accepted payload is eventually delivered *)
  | Gap_free_gseq
      (** delivery consumes a gap-free global sequence; losing one wire
          message permanently blocks everything after it *)
  | Epoch_flush
      (** a superseded instance must not keep payloads parked in a
          partially-filled batch waiting for a fuller fill *)
  | Fifo_order  (** per-sender FIFO delivery *)
  | Causal_order  (** causal delivery *)

val obligation_name : obligation -> string
(** Stable kebab-case name, e.g. ["total-order"], ["gap-free-gseq"]. *)

(** What an implementation can actually do across a generation switch.
    Layer capabilities describe the replacement indirection; protocol
    capabilities describe the variant's own wire discipline. *)
type capability =
  | Reissue_undelivered
      (** the layer re-issues accepted-but-undelivered payloads on the
          successor instance (Algorithm 1, lines 15–18) *)
  | Generation_filter
      (** the layer filters deliveries by generation number, so a
          re-issued payload cannot also arrive from the old instance *)
  | Quiesce_before_switch
      (** the layer blocks new work and drains before switching *)
  | Epoch_tagged_wire
      (** every wire message carries the sender's epoch and receivers
          drop other epochs' traffic *)
  | Epoch_flush_on_supersede
      (** a batching instance force-flushes its open batch the moment
          it observes a newer epoch *)
  | Buffer_future_epoch
      (** a passive module stashes wire traffic tagged with a future
          epoch and replays it once the stack reaches that epoch *)
  | Slot_scoped_rounds
      (** consensus instances run under identifiers scoped by
          generation slot, so two implementations can never decide the
          same instance *)

val capability_name : capability -> string

(** One message kind on the wire, attributed to the role that emits
    it. [k_payload] says the message carries (a batch of) application
    payloads, as opposed to pure control traffic. *)
type kind = { k_name : string; k_role : string; k_payload : bool }

val kind : ?payload:bool -> role:string -> string -> kind
(** [kind ~role name]: a control kind by default ([payload] false). *)

(** Transition labels of the per-broadcast LTS. [Emit]/[Recv] name a
    {!kind}; [Aggregate] parks the payload in an open batch of the
    named kind and [Flush] turns that batch into one wire message. *)
type label =
  | Accept  (** the application hands a payload to the protocol *)
  | Emit of string
  | Recv of string
  | Aggregate of string
  | Flush of string
  | Deliver  (** the payload is delivered to the application *)

type transition = { t_from : string; t_label : label; t_to : string }

val t : string -> label -> string -> transition
(** [t from label to_]: transition constructor, for compact spec
    declarations. *)

type t = {
  s_service : string;  (** the service the spec describes *)
  s_roles : string list;
  s_kinds : kind list;
  s_init : string;  (** initial (and quiescent) LTS state *)
  s_transitions : transition list;
  s_obligations : obligation list;
  s_capabilities : capability list;
  s_opaque : string option;
      (** [Some reason]: the protocol declares no behaviour; the
          safe-update checker refuses to reason about it *)
}

val make :
  service:string ->
  ?roles:string list ->
  ?kinds:kind list ->
  ?init:string ->
  ?transitions:transition list ->
  ?obligations:obligation list ->
  ?capabilities:capability list ->
  unit ->
  t
(** A behavioural spec; [init] defaults to ["idle"]. *)

val opaque : service:string -> string -> t
(** [opaque ~service reason]: an explicitly unspecified behaviour. The
    checker treats any update involving an opaque spec as unsafe, and
    the lint demands a reasoned [dpu-lint: allow] at any registration
    site that resorts to this. *)

val is_opaque : t -> bool

val has : t -> capability -> bool

val obliges : t -> obligation -> bool

val kind_named : t -> string -> kind option
