module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram
module Clock = Dpu_runtime.Clock

type backend =
  | Simulated of { sim : Sim.t; net : Payload.t Datagram.t }
  | External

type t = {
  backend : backend;
  runtime : Payload.t Dpu_runtime.Runtime.t;
  trace : Trace.t;
  metrics : Dpu_obs.Metrics.t;
  registry : Registry.t;
  stacks : Stack.t option array;
  local : int list;
  group_id : int option;
}

let make ?group_id ~backend ~runtime ~trace ~metrics ~hop_cost ~n ~local () =
  let clock = Dpu_runtime.Runtime.clock runtime in
  let stacks = Array.make n None in
  List.iter
    (fun node ->
      if node < 0 || node >= n then
        invalid_arg (Printf.sprintf "System: local node %d out of range" node);
      stacks.(node) <-
        Some (Stack.create ~clock ~node ?group:group_id ~hop_cost ~trace ~metrics ()))
    local;
  {
    backend;
    runtime;
    trace;
    metrics;
    registry = Registry.create ();
    stacks;
    local;
    group_id;
  }

let create ?(seed = 1) ?(loss = 0.0) ?(dup = 0.0) ?(link = Dpu_net.Latency.lan)
    ?(hop_cost = 0.05) ?(trace_enabled = true) ?(metrics = Dpu_obs.Metrics.noop) ~n
    () =
  let sim = Sim.create ~seed () in
  let net = Datagram.create sim ~n ~loss ~dup ~link () in
  let trace = Trace.create ~enabled:trace_enabled () in
  Sim.register_metrics sim metrics;
  Datagram.register_metrics net metrics;
  let runtime = Dpu_runtime.Sim_backend.runtime sim net in
  make
    ~backend:(Simulated { sim; net })
    ~runtime ~trace ~metrics ~hop_cost ~n
    ~local:(List.init n Fun.id) ()

let of_runtime ?(hop_cost = 0.05) ?(trace_enabled = true)
    ?(metrics = Dpu_obs.Metrics.noop) ?local ~runtime ~n () =
  let trace = Trace.create ~enabled:trace_enabled () in
  let local = match local with None -> List.init n Fun.id | Some l -> l in
  make ~backend:External ~runtime ~trace ~metrics ~hop_cost ~n ~local ()

let of_sim ?group_id ?(hop_cost = 0.05) ?(trace_enabled = true)
    ?(metrics = Dpu_obs.Metrics.noop) ~runtime ~sim ~net ~n () =
  if Datagram.size net <> n then
    invalid_arg "System.of_sim: network size does not match n";
  let trace = Trace.create ~enabled:trace_enabled () in
  make ?group_id
    ~backend:(Simulated { sim; net })
    ~runtime ~trace ~metrics ~hop_cost ~n
    ~local:(List.init n Fun.id) ()

let n t = Array.length t.stacks

let group_id t = t.group_id

let runtime t = t.runtime

let clock t = Dpu_runtime.Runtime.clock t.runtime

let transport t = Dpu_runtime.Runtime.transport t.runtime

let rng t = Dpu_runtime.Runtime.rng t.runtime

let net t =
  match t.backend with
  | Simulated { net; _ } -> net
  | External -> invalid_arg "System.net: not a simulated deployment"

let is_simulated t = match t.backend with Simulated _ -> true | External -> false

let trace t = t.trace

let metrics t = t.metrics

let registry t = t.registry

let local_nodes t = t.local

let stack t i =
  match t.stacks.(i) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "System.stack: node %d is not local" i)

let iter_stacks t f = Array.iter (function Some s -> f s | None -> ()) t.stacks

let stacks t = Array.of_list (List.filter_map Fun.id (Array.to_list t.stacks))

let crash_node t i =
  (match t.stacks.(i) with Some s -> Stack.crash s | None -> ());
  match t.backend with Simulated { net; _ } -> Datagram.crash net i | External -> ()

let correct_nodes t =
  match t.backend with
  | Simulated { net; _ } -> Datagram.correct_nodes net
  | External ->
    List.filter
      (fun i ->
        match t.stacks.(i) with Some s -> not (Stack.is_crashed s) | None -> false)
      t.local

let now t = Clock.now (clock t)

let sim_exn t =
  match t.backend with
  | Simulated { sim; _ } -> sim
  | External -> invalid_arg "System: not a simulated deployment"

let run_for t d = Sim.run_for (sim_exn t) d

let run_until t time = Sim.run ~until:time (sim_exn t)

let run_until_quiescent ?limit t =
  match limit with
  | None -> Sim.run (sim_exn t)
  | Some l -> Sim.run ~until:l (sim_exn t)
