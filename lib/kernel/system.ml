module Sim = Dpu_engine.Sim
module Datagram = Dpu_net.Datagram

type t = {
  sim : Sim.t;
  net : Payload.t Datagram.t;
  trace : Trace.t;
  metrics : Dpu_obs.Metrics.t;
  registry : Registry.t;
  stacks : Stack.t array;
}

let create ?(seed = 1) ?(loss = 0.0) ?(dup = 0.0) ?(link = Dpu_net.Latency.lan)
    ?(hop_cost = 0.05) ?(trace_enabled = true) ?(metrics = Dpu_obs.Metrics.noop) ~n
    () =
  let sim = Sim.create ~seed () in
  let net = Datagram.create sim ~n ~loss ~dup ~link () in
  let trace = Trace.create ~enabled:trace_enabled () in
  Sim.register_metrics sim metrics;
  Datagram.register_metrics net metrics;
  let stacks =
    Array.init n (fun node -> Stack.create ~sim ~node ~hop_cost ~trace ~metrics ())
  in
  { sim; net; trace; metrics; registry = Registry.create (); stacks }

let n t = Array.length t.stacks

let sim t = t.sim

let net t = t.net

let trace t = t.trace

let metrics t = t.metrics

let registry t = t.registry

let stacks t = t.stacks

let stack t i = t.stacks.(i)

let iter_stacks t f = Array.iter f t.stacks

let crash_node t i =
  Stack.crash t.stacks.(i);
  Datagram.crash t.net i

let correct_nodes t = Datagram.correct_nodes t.net

let now t = Sim.now t.sim

let run_for t d = Sim.run_for t.sim d

let run_until t time = Sim.run ~until:time t.sim

let run_until_quiescent ?limit t =
  match limit with None -> Sim.run t.sim | Some l -> Sim.run ~until:l t.sim
