exception Error of string

let () =
  Printexc.register_printer (function
    | Error msg -> Some (Printf.sprintf "Dpu_kernel.Wire.Error(%S)" msg)
    | _ -> None)

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

module W = struct
  type t = Buffer.t

  let create ?(initial_size = 64) () = Buffer.create initial_size

  let reset = Buffer.clear

  let length = Buffer.length

  let u8 b v =
    assert (v >= 0 && v <= 0xff);
    Buffer.add_char b (Char.chr v)

  let int b v = Buffer.add_int64_le b (Int64.of_int v)

  let bool b v = u8 b (if v then 1 else 0)

  let float b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  let raw b s = Buffer.add_string b s

  let str b s =
    Buffer.add_int32_le b (Int32.of_int (String.length s));
    Buffer.add_string b s

  let opt b f = function
    | None -> u8 b 0
    | Some v ->
      u8 b 1;
      f b v

  let list b f vs =
    Buffer.add_int32_le b (Int32.of_int (List.length vs));
    List.iter (fun v -> f b v) vs

  let add_writer b w = Buffer.add_buffer b w

  let str_writer b w =
    Buffer.add_int32_le b (Int32.of_int (Buffer.length w));
    Buffer.add_buffer b w

  let contents = Buffer.contents

  let blit_to_bytes w buf =
    let len = Buffer.length w in
    if len > Bytes.length buf then
      fail "writer holds %d bytes but destination has room for %d" len
        (Bytes.length buf);
    Buffer.blit w 0 buf 0 len;
    len
end

module R = struct
  type t = { src : string; mutable pos : int; limit : int }

  let of_string src = { src; pos = 0; limit = String.length src }

  let of_bytes ?(off = 0) ?len buf =
    let blen = Bytes.length buf in
    let len = match len with Some l -> l | None -> blen - off in
    if off < 0 || len < 0 || off + len > blen then
      fail "bad slice: off=%d len=%d over %d bytes" off len blen;
    (* Zero-copy view of the caller's buffer: no bytes move here, and the
       reads that keep data ([str]/[raw]) copy out what they return, so the
       reader must simply not be used after [buf] is next overwritten.
       dpu-lint: allow unsafe-bytes (read-only view; lifetime documented in the mli) *)
    { src = Bytes.unsafe_to_string buf; pos = off; limit = off + len }

  let need r k what =
    if r.pos + k > r.limit then
      fail "truncated input: need %d bytes for %s at offset %d (have %d)" k what
        r.pos (r.limit - r.pos)

  let u8 r =
    need r 1 "u8";
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let int r =
    need r 8 "int";
    let v = Int64.to_int (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let bool r =
    match u8 r with
    | 0 -> false
    | 1 -> true
    | v -> fail "bad bool byte %d" v

  let float r =
    need r 8 "float";
    let v = Int64.float_of_bits (String.get_int64_le r.src r.pos) in
    r.pos <- r.pos + 8;
    v

  let u32 r =
    need r 4 "u32";
    let v = Int32.to_int (String.get_int32_le r.src r.pos) in
    r.pos <- r.pos + 4;
    if v < 0 then fail "negative u32 %d" v;
    v

  let str r =
    need r 4 "string length";
    let len = Int32.to_int (String.get_int32_le r.src r.pos) in
    r.pos <- r.pos + 4;
    if len < 0 then fail "negative string length %d" len;
    need r len "string body";
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s

  let raw r len =
    if len < 0 then fail "negative raw length %d" len;
    need r len "raw bytes";
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s

  let sub r len =
    if len < 0 then fail "negative sub-frame length %d" len;
    need r len "sub-frame";
    let s = { src = r.src; pos = r.pos; limit = r.pos + len } in
    r.pos <- r.pos + len;
    s

  let opt r f = match u8 r with 0 -> None | 1 -> Some (f r) | v -> fail "bad option byte %d" v

  let list r f =
    need r 4 "list length";
    let len = Int32.to_int (String.get_int32_le r.src r.pos) in
    r.pos <- r.pos + 4;
    if len < 0 then fail "negative list length %d" len;
    List.init len (fun _ -> f r)

  let at_end r = r.pos = r.limit

  let expect_end r =
    if not (at_end r) then
      fail "trailing garbage: %d bytes left at offset %d" (r.limit - r.pos)
        r.pos
end
