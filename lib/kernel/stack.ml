module Clock = Dpu_runtime.Clock

type handlers = {
  handle_call : Service.t -> Payload.t -> unit;
  handle_indication : Service.t -> Payload.t -> unit;
  on_start : unit -> unit;
  on_stop : unit -> unit;
}

let default_handlers =
  {
    handle_call = (fun _ _ -> ());
    handle_indication = (fun _ _ -> ());
    on_start = (fun () -> ());
    on_stop = (fun () -> ());
  }

type module_ = {
  m_id : int;
  m_name : string;
  m_provides : Service.t list;
  m_requires : Service.t list;
  mutable m_handlers : handlers;
  mutable m_removed : bool;
}

type t = {
  clock : Clock.t;
  node : int;
  hop_cost : float;
  trace : Trace.t;
  metrics : Dpu_obs.Metrics.t;
  blocked_hist : Dpu_obs.Metrics.histogram;
  mutable next_module_id : int;
  mutable modules : module_ list; (* reversed addition order *)
  mutable bindings : module_ Service.Map.t;
  blocked : (Service.t, (float * Payload.t) Queue.t) Hashtbl.t;
      (* enqueue time, payload *)
  env : (string, int) Hashtbl.t;
  mutable crashed : bool;
  mutable calls_executed : int;
  mutable indications_executed : int;
  mutable calls_blocked : int;
  mutable calls_unblocked : int;
  mutable binds : int;
  mutable unbinds : int;
}

exception Already_bound of Service.t

let create ~clock ~node ?group ?(hop_cost = 0.05) ~trace
    ?(metrics = Dpu_obs.Metrics.noop) () =
  let labels =
    ("node", string_of_int node)
    ::
    (match group with
    | Some g -> [ ("group", string_of_int g) ]
    | None -> [])
  in
  let t =
    {
      clock;
      node;
      hop_cost;
      trace;
      metrics;
      blocked_hist =
        Dpu_obs.Metrics.histogram metrics ~labels "kernel_blocked_call_ms";
      next_module_id = 0;
      modules = [];
      bindings = Service.Map.empty;
      blocked = Hashtbl.create 8;
      env = Hashtbl.create 4;
      crashed = false;
      calls_executed = 0;
      indications_executed = 0;
      calls_blocked = 0;
      calls_unblocked = 0;
      binds = 0;
      unbinds = 0;
    }
  in
  let module M = Dpu_obs.Metrics in
  M.register_int metrics ~labels "kernel_calls_total" (fun () -> t.calls_executed);
  M.register_int metrics ~labels "kernel_indications_total" (fun () ->
      t.indications_executed);
  M.register_int metrics ~labels "kernel_calls_blocked_total" (fun () ->
      t.calls_blocked);
  M.register_int metrics ~labels "kernel_calls_unblocked_total" (fun () ->
      t.calls_unblocked);
  M.register_int metrics ~labels "kernel_binds_total" (fun () -> t.binds);
  M.register_int metrics ~labels "kernel_unbinds_total" (fun () -> t.unbinds);
  M.register_int metrics ~labels "kernel_modules" (fun () -> List.length t.modules);
  t

let node t = t.node

let clock t = t.clock

let now t = Clock.now t.clock

let trace t = t.trace

let metrics t = t.metrics

let hop_cost t = t.hop_cost

let is_crashed t = t.crashed

let record t kind = Trace.record t.trace ~time:(now t) ~node:t.node kind

(* Building payload descriptions is pure overhead when the trace is
   off (the benchmark configurations); gate the formatting, not just
   the recording. *)
let record_lazy t kind_of_desc payload =
  if Trace.enabled t.trace then record t (kind_of_desc (Payload.to_string payload))

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    record t Trace.Crash
  end

let modules t = List.rev t.modules

let module_name m = m.m_name

let module_provides m = m.m_provides

let module_requires m = m.m_requires

let find_module t ~name =
  List.find_opt (fun m -> String.equal m.m_name name && not m.m_removed) t.modules

let has_module t ~name = Option.is_some (find_module t ~name)

let add_module t ~name ~provides ~requires init =
  let m =
    {
      m_id = t.next_module_id;
      m_name = name;
      m_provides = provides;
      m_requires = requires;
      m_handlers = default_handlers;
      m_removed = false;
    }
  in
  t.next_module_id <- t.next_module_id + 1;
  t.modules <- m :: t.modules;
  m.m_handlers <- init t m;
  record t (Trace.Add_module name);
  m.m_handlers.on_start ();
  m

let remove_module t m =
  if not m.m_removed then begin
    m.m_handlers.on_stop ();
    m.m_removed <- true;
    t.modules <- List.filter (fun m' -> m'.m_id <> m.m_id) t.modules;
    (* Drop any binding still pointing at the removed module. *)
    Service.Map.iter
      (fun svc bound_m ->
        if bound_m.m_id = m.m_id then begin
          t.bindings <- Service.Map.remove svc t.bindings;
          t.unbinds <- t.unbinds + 1;
          record t (Trace.Unbind (Service.name svc, m.m_name))
        end)
      t.bindings;
    record t (Trace.Remove_module m.m_name)
  end

let bound t svc = Service.Map.find_opt svc t.bindings

let blocked_queue t svc =
  match Hashtbl.find_opt t.blocked svc with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.blocked svc q;
    q

let blocked_calls t svc =
  match Hashtbl.find_opt t.blocked svc with None -> 0 | Some q -> Queue.length q

(* Dispatch of a call once the hop delay has elapsed. The binding is
   resolved here, at execution time, so calls racing a replacement see
   the binding in force when they arrive, as in the paper's model. *)
let rec execute_call t svc payload =
  if not t.crashed then
    match bound t svc with
    | Some m ->
      t.calls_executed <- t.calls_executed + 1;
      record_lazy t (fun d -> Trace.Call (Service.name svc, d)) payload;
      m.m_handlers.handle_call svc payload
    | None ->
      t.calls_blocked <- t.calls_blocked + 1;
      record_lazy t (fun d -> Trace.Call_blocked (Service.name svc, d)) payload;
      Queue.add (now t, payload) (blocked_queue t svc)

and release_blocked t svc =
  match Hashtbl.find_opt t.blocked svc with
  | None -> ()
  | Some q ->
    let pending = Queue.length q in
    let now = now t in
    for _ = 1 to pending do
      let blocked_at, payload = Queue.pop q in
      t.calls_unblocked <- t.calls_unblocked + 1;
      Dpu_obs.Metrics.observe t.blocked_hist (now -. blocked_at);
      record t (Trace.Call_unblocked (Service.name svc));
      Clock.defer t.clock ~delay:t.hop_cost (fun () -> execute_call t svc payload)
    done

let bind t svc m =
  assert (List.exists (Service.equal svc) m.m_provides);
  (match bound t svc with
  | Some existing when existing.m_id <> m.m_id -> raise (Already_bound svc)
  | Some _ | None -> ());
  t.bindings <- Service.Map.add svc m t.bindings;
  t.binds <- t.binds + 1;
  record t (Trace.Bind (Service.name svc, m.m_name));
  release_blocked t svc

let unbind t svc =
  match bound t svc with
  | None -> ()
  | Some m ->
    t.bindings <- Service.Map.remove svc t.bindings;
    t.unbinds <- t.unbinds + 1;
    record t (Trace.Unbind (Service.name svc, m.m_name))

let call t svc payload =
  if not t.crashed then
    Clock.defer t.clock ~delay:t.hop_cost (fun () -> execute_call t svc payload)

let execute_indication t svc payload =
  if not t.crashed then begin
    t.indications_executed <- t.indications_executed + 1;
    record_lazy t (fun d -> Trace.Indication (Service.name svc, d)) payload;
    (* Snapshot: handlers may add/remove modules while we iterate. *)
    let receivers =
      List.filter (fun m -> List.exists (Service.equal svc) m.m_requires) (modules t)
    in
    List.iter (fun m -> m.m_handlers.handle_indication svc payload) receivers
  end

let indicate t svc payload =
  if not t.crashed then
    Clock.defer t.clock ~delay:t.hop_cost (fun () ->
        execute_indication t svc payload)

let app_event t ~tag ~data = record t (Trace.App (tag, data))

let dispatch_counts t = (t.calls_executed, t.indications_executed)

let set_env t key v = Hashtbl.replace t.env key v

let get_env t key ~default =
  match Hashtbl.find_opt t.env key with Some v -> v | None -> default

let after t ~delay fn =
  Clock.schedule t.clock ~delay (fun () -> if not t.crashed then fn ())

let periodic t ~period fn =
  Clock.every t.clock ~period (fun () -> if not t.crashed then fn ())
