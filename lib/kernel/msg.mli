(** Application messages with globally unique identities.

    Algorithm 1 manipulates a set of [undelivered] messages and tests
    membership (line 19) and duplication (line 18), so messages must be
    comparable by a unique identity: the originating node plus a local
    sequence counter. *)

type id = { origin : int; seq : int }

type t = {
  id : id;
  size : int;  (** payload size in bytes, used for transmission delay *)
  body : string;  (** opaque application data *)
}

val id_compare : id -> id -> int

val id_equal : id -> id -> bool

val id_to_string : id -> string

val compare : t -> t -> int
(** Orders by [id] only. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val make : origin:int -> seq:int -> ?size:int -> string -> t
(** [make ~origin ~seq body] with a default size of 4096 bytes (the
    paper's 4 KB experiment payloads). *)

val write_id : Wire.W.t -> id -> unit

val read_id : Wire.R.t -> id

val write : Wire.W.t -> t -> unit
(** Wire helpers for codecs carrying message ids or whole messages. *)

val read : Wire.R.t -> t

module Id_map : Map.S with type key = id
module Id_set : Set.S with type elt = id
module Set : Set.S with type elt = t
