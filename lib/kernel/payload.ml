type t = ..

type t += Unit

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)
(* ------------------------------------------------------------------ *)

let printers : (t -> string option) list ref = ref []

let register_printer f = printers := f :: !printers

let to_string p =
  match p with
  | Unit -> "unit"
  | _ ->
    let rec try_all = function
      | [] -> "<payload>"
      | f :: rest -> ( match f p with Some s -> s | None -> try_all rest)
    in
    try_all !printers

let pp ppf p = Format.pp_print_string ppf (to_string p)

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let () =
  Printexc.register_printer (function
    | Decode_error msg ->
      Some (Printf.sprintf "Dpu_kernel.Payload.Decode_error(%S)" msg)
    | _ -> None)

let decode_fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

type codec = {
  c_tag : string;
  c_encode : t -> (Wire.W.t -> unit) option;
  c_decode : Wire.R.t -> t;
}

let codecs : codec list ref = ref []

let codec_by_tag : (string, codec) Hashtbl.t = Hashtbl.create 64

let registered_tags () =
  (* dpu-lint: allow hashtbl-iter — sorted before being returned *)
  Hashtbl.fold (fun tag _ acc -> tag :: acc) codec_by_tag []
  |> List.sort String.compare

let register_codec ~tag ~encode ~decode =
  if String.length tag = 0 || String.length tag > 0xff then
    invalid_arg "Payload.register_codec: tag must be 1..255 bytes";
  if Hashtbl.mem codec_by_tag tag then
    invalid_arg (Printf.sprintf "Payload.register_codec: duplicate tag %S" tag);
  let c = { c_tag = tag; c_encode = encode; c_decode = decode } in
  Hashtbl.replace codec_by_tag tag c;
  codecs := c :: !codecs

(* A frame is [u8 taglen][tag bytes][body ...]; the body runs to the
   end of the enclosing string, and [decode] rejects trailing garbage.
   Nested payloads are written with [W.str (encode_exn inner)] so their
   extent is delimited by the string length prefix and recursion stays
   unambiguous. *)

let encode_into w p =
  let rec try_all = function
    | [] -> false
    | c :: rest -> (
      match c.c_encode p with
      | None -> try_all rest
      | Some write ->
        Wire.W.u8 w (String.length c.c_tag);
        Wire.W.raw w c.c_tag;
        write w;
        true)
  in
  try_all !codecs

let encode p =
  let w = Wire.W.create () in
  if encode_into w p then Some (Wire.W.contents w) else None

let encode_exn p =
  match encode p with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Payload.encode_exn: no codec for %s" (to_string p))

let has_codec p = match encode p with Some _ -> true | None -> false

let decode_reader r =
  let tag =
    match
      let taglen = Wire.R.u8 r in
      Wire.R.raw r taglen
    with
    | tag -> tag
    | exception Wire.Error msg -> decode_fail "bad frame header: %s" msg
  in
  match Hashtbl.find_opt codec_by_tag tag with
  | None -> decode_fail "unknown payload tag %S" tag
  | Some c -> (
    match
      let p = c.c_decode r in
      Wire.R.expect_end r;
      p
    with
    | p -> p
    | exception Wire.Error msg -> decode_fail "bad %S frame: %s" tag msg)

let decode s = decode_reader (Wire.R.of_string s)

let decode_slice ?off ?len buf =
  match Wire.R.of_bytes ?off ?len buf with
  | r -> decode_reader r
  | exception Wire.Error msg -> decode_fail "bad frame slice: %s" msg

(* A length-prefixed frame embedded in a larger stream ([W.str_writer]
   on the way out): read the u32 prefix, then decode the frame in place
   through a bounded sub-reader — no substring allocation. *)
let decode_prefixed r =
  match
    let len = Wire.R.u32 r in
    Wire.R.sub r len
  with
  | sub -> decode_reader sub
  | exception Wire.Error msg -> decode_fail "bad frame length prefix: %s" msg

(* Built-in codec for the trivial payload. *)
let () =
  register_codec ~tag:"unit"
    ~encode:(fun p -> match p with Unit -> Some (fun _w -> ()) | _ -> None)
    ~decode:(fun _r -> Unit)

(* ------------------------------------------------------------------ *)
(* Envelope                                                            *)
(* ------------------------------------------------------------------ *)

module Envelope = struct
  let magic = "DPU1"

  let version = 1

  let batch_version = 2

  type info = { src : int; service : string; generation : int }

  let write_header w ~v ~src ~service ~generation =
    Wire.W.raw w magic;
    Wire.W.u8 w v;
    Wire.W.int w src;
    Wire.W.str w service;
    Wire.W.int w generation

  let header_overhead ~service =
    (* magic + version byte + src + service (u32 len + bytes) + generation *)
    String.length magic + 1 + 8 + (4 + String.length service) + 8

  let seal_encoded ~src ~service ~generation body =
    let w = Wire.W.create ~initial_size:(String.length body + 32) () in
    write_header w ~v:version ~src ~service ~generation;
    Wire.W.str w body;
    Wire.W.contents w

  let seal ~src ~service ~generation p =
    seal_encoded ~src ~service ~generation (encode_exn p)

  let seal_into w ~src ~service ~generation body =
    write_header w ~v:version ~src ~service ~generation;
    Wire.W.str_writer w body

  let seal_batch_into w ~src ~service ~generation ~count elems =
    if count <= 0 then
      invalid_arg "Payload.Envelope.seal_batch_into: empty batch";
    write_header w ~v:batch_version ~src ~service ~generation;
    Wire.W.int w count;
    Wire.W.add_writer w elems

  let seal_batch ~src ~service ~generation payloads =
    let elems = Wire.W.create () in
    let scratch = Wire.W.create () in
    let count =
      List.fold_left
        (fun count p ->
          Wire.W.reset scratch;
          if not (encode_into scratch p) then
            invalid_arg
              (Printf.sprintf "Payload.Envelope.seal_batch: no codec for %s"
                 (to_string p));
          Wire.W.str_writer elems scratch;
          count + 1)
        0 payloads
    in
    let w = Wire.W.create () in
    seal_batch_into w ~src ~service ~generation ~count elems;
    Wire.W.contents w

  let open_reader r =
    match
      let m = Wire.R.raw r (String.length magic) in
      if not (String.equal m magic) then decode_fail "bad envelope magic %S" m;
      let v = Wire.R.u8 r in
      if v <> version && v <> batch_version then
        decode_fail "unsupported envelope version %d" v;
      let src = Wire.R.int r in
      let service = Wire.R.str r in
      let generation = Wire.R.int r in
      ({ src; service; generation }, v)
    with
    | info, v ->
      let payloads =
        if v = version then begin
          let p = decode_prefixed r in
          (match Wire.R.expect_end r with
          | () -> ()
          | exception Wire.Error msg -> decode_fail "bad envelope: %s" msg);
          [ p ]
        end
        else begin
          let count =
            match Wire.R.int r with
            | count -> count
            | exception Wire.Error msg -> decode_fail "bad envelope: %s" msg
          in
          if count <= 0 then decode_fail "bad batch count %d" count;
          let ps = List.init count (fun _ -> decode_prefixed r) in
          (match Wire.R.expect_end r with
          | () -> ()
          | exception Wire.Error msg -> decode_fail "bad envelope: %s" msg);
          ps
        end
      in
      (info, payloads)
    | exception Wire.Error msg -> decode_fail "bad envelope: %s" msg

  let open_slice ?off ?len buf =
    match Wire.R.of_bytes ?off ?len buf with
    | r -> open_reader r
    | exception Wire.Error msg -> decode_fail "bad envelope slice: %s" msg

  let open_ s =
    let r = Wire.R.of_string s in
    match open_reader r with
    | info, [ p ] -> (info, p)
    | _, _ ->
      (* A multi-payload batch cannot be flattened into the legacy
         single-payload shape without silently dropping messages; the
         transport drain uses [open_slice] instead. *)
      decode_fail "batch envelope in single-payload context"
end
