type t = ..

type t += Unit

(* ------------------------------------------------------------------ *)
(* Printers                                                            *)
(* ------------------------------------------------------------------ *)

let printers : (t -> string option) list ref = ref []

let register_printer f = printers := f :: !printers

let to_string p =
  match p with
  | Unit -> "unit"
  | _ ->
    let rec try_all = function
      | [] -> "<payload>"
      | f :: rest -> ( match f p with Some s -> s | None -> try_all rest)
    in
    try_all !printers

let pp ppf p = Format.pp_print_string ppf (to_string p)

(* ------------------------------------------------------------------ *)
(* Wire codecs                                                         *)
(* ------------------------------------------------------------------ *)

exception Decode_error of string

let () =
  Printexc.register_printer (function
    | Decode_error msg ->
      Some (Printf.sprintf "Dpu_kernel.Payload.Decode_error(%S)" msg)
    | _ -> None)

let decode_fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

type codec = {
  c_tag : string;
  c_encode : t -> (Wire.W.t -> unit) option;
  c_decode : Wire.R.t -> t;
}

let codecs : codec list ref = ref []

let codec_by_tag : (string, codec) Hashtbl.t = Hashtbl.create 64

let registered_tags () =
  (* dpu-lint: allow hashtbl-iter — sorted before being returned *)
  Hashtbl.fold (fun tag _ acc -> tag :: acc) codec_by_tag []
  |> List.sort String.compare

let register_codec ~tag ~encode ~decode =
  if String.length tag = 0 || String.length tag > 0xff then
    invalid_arg "Payload.register_codec: tag must be 1..255 bytes";
  if Hashtbl.mem codec_by_tag tag then
    invalid_arg (Printf.sprintf "Payload.register_codec: duplicate tag %S" tag);
  let c = { c_tag = tag; c_encode = encode; c_decode = decode } in
  Hashtbl.replace codec_by_tag tag c;
  codecs := c :: !codecs

(* A frame is [u8 taglen][tag bytes][body ...]; the body runs to the
   end of the enclosing string, and [decode] rejects trailing garbage.
   Nested payloads are written with [W.str (encode_exn inner)] so their
   extent is delimited by the string length prefix and recursion stays
   unambiguous. *)

let encode p =
  let rec try_all = function
    | [] -> None
    | c :: rest -> (
      match c.c_encode p with
      | None -> try_all rest
      | Some write ->
        let w = Wire.W.create () in
        Wire.W.u8 w (String.length c.c_tag);
        Wire.W.raw w c.c_tag;
        write w;
        Some (Wire.W.contents w))
  in
  try_all !codecs

let encode_exn p =
  match encode p with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Payload.encode_exn: no codec for %s" (to_string p))

let has_codec p = match encode p with Some _ -> true | None -> false

let decode s =
  let r = Wire.R.of_string s in
  let tag =
    match
      let taglen = Wire.R.u8 r in
      Wire.R.raw r taglen
    with
    | tag -> tag
    | exception Wire.Error msg -> decode_fail "bad frame header: %s" msg
  in
  match Hashtbl.find_opt codec_by_tag tag with
  | None -> decode_fail "unknown payload tag %S" tag
  | Some c -> (
    match
      let p = c.c_decode r in
      Wire.R.expect_end r;
      p
    with
    | p -> p
    | exception Wire.Error msg -> decode_fail "bad %S frame: %s" tag msg)

(* Built-in codec for the trivial payload. *)
let () =
  register_codec ~tag:"unit"
    ~encode:(fun p -> match p with Unit -> Some (fun _w -> ()) | _ -> None)
    ~decode:(fun _r -> Unit)

(* ------------------------------------------------------------------ *)
(* Envelope                                                            *)
(* ------------------------------------------------------------------ *)

module Envelope = struct
  let magic = "DPU1"

  let version = 1

  type info = { src : int; service : string; generation : int }

  let seal_encoded ~src ~service ~generation body =
    let w = Wire.W.create ~initial_size:(String.length body + 32) () in
    Wire.W.raw w magic;
    Wire.W.u8 w version;
    Wire.W.int w src;
    Wire.W.str w service;
    Wire.W.int w generation;
    Wire.W.str w body;
    Wire.W.contents w

  let seal ~src ~service ~generation p =
    seal_encoded ~src ~service ~generation (encode_exn p)

  let open_ s =
    let r = Wire.R.of_string s in
    match
      let m = Wire.R.raw r (String.length magic) in
      if not (String.equal m magic) then decode_fail "bad envelope magic %S" m;
      let v = Wire.R.u8 r in
      if v <> version then decode_fail "unsupported envelope version %d" v;
      let src = Wire.R.int r in
      let service = Wire.R.str r in
      let generation = Wire.R.int r in
      let body = Wire.R.str r in
      Wire.R.expect_end r;
      ({ src; service; generation }, body)
    with
    | info, body -> (info, decode body)
    | exception Wire.Error msg -> decode_fail "bad envelope: %s" msg
end
