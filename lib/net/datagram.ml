module Sim = Dpu_engine.Sim
module Rng = Dpu_engine.Rng

type counters = {
  sent : int;
  delivered : int;
  lost : int;
  filtered : int;
  duplicated : int;
  dup_bytes : int;
  blocked : int;
  blocked_crash : int;
  blocked_partition : int;
  blocked_no_handler : int;
  bytes : int;
}

type 'a t = {
  sim : Sim.t;
  n : int;
  rng : Rng.t;
  mutable loss : float;
  mutable dup : float;
  link : Latency.link;
  egress_free : float array;
      (* per-node NIC: time at which the interface is free again *)
  handlers : (src:int -> 'a -> unit) option array;
  crashed : bool array;
  mutable group_of : int array option; (* partition: group id per node *)
  overrides : (int, Latency.link) Hashtbl.t;
      (* keyed [src * n + dst]: a flat int key costs no tuple
         allocation on the per-send lookup *)
  mutable drop_filter : (src:int -> dst:int -> 'a -> bool) option;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable filtered : int;
  mutable duplicated : int;
  mutable dup_bytes : int;
  mutable blocked_crash : int;
  mutable blocked_partition : int;
  mutable blocked_no_handler : int;
  mutable bytes : int;
}

let create sim ~n ?rng ?(loss = 0.0) ?(dup = 0.0) ?(link = Latency.lan) () =
  assert (n > 0);
  {
    sim;
    n;
    rng = (match rng with Some r -> r | None -> Rng.split (Sim.rng sim));
    loss;
    dup;
    link;
    egress_free = Array.make n 0.0;
    handlers = Array.make n None;
    crashed = Array.make n false;
    group_of = None;
    overrides = Hashtbl.create 4;
    drop_filter = None;
    sent = 0;
    delivered = 0;
    lost = 0;
    filtered = 0;
    duplicated = 0;
    dup_bytes = 0;
    blocked_crash = 0;
    blocked_partition = 0;
    blocked_no_handler = 0;
    bytes = 0;
  }

let size t = t.n

let sim t = t.sim

let set_handler t ~node f = t.handlers.(node) <- Some f

let is_crashed t node = t.crashed.(node)

let crash t node = t.crashed.(node) <- true

let recover t node =
  t.crashed.(node) <- false;
  (* A rebooted interface has no transmissions queued from its past
     life: reset the egress clock to "free now". *)
  t.egress_free.(node) <- Sim.now t.sim

let correct_nodes t =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if t.crashed.(i) then acc else i :: acc)
  in
  collect (t.n - 1) []

let partition t groups =
  let group_of = Array.make t.n (-1) in
  List.iteri (fun gid members -> List.iter (fun node -> group_of.(node) <- gid) members) groups;
  (* Leftover nodes form their own implicit group. *)
  let next = List.length groups in
  Array.iteri (fun i g -> if g = -1 then group_of.(i) <- next) group_of;
  t.group_of <- Some group_of

let heal t = t.group_of <- None

let set_loss t p = t.loss <- p

let loss t = t.loss

let set_dup t p = t.dup <- p

let dup t = t.dup

let set_drop_filter t f = t.drop_filter <- f

let override_key t ~src ~dst = (src * t.n) + dst

let set_link_override t ~src ~dst link =
  match link with
  | Some l -> Hashtbl.replace t.overrides (override_key t ~src ~dst) l
  | None -> Hashtbl.remove t.overrides (override_key t ~src ~dst)

let separated t src dst =
  match t.group_of with
  | None -> false
  | Some g -> g.(src) <> g.(dst)

let deliver t ~src ~dst payload =
  if t.crashed.(dst) then t.blocked_crash <- t.blocked_crash + 1
  else if separated t src dst then t.blocked_partition <- t.blocked_partition + 1
  else
    match t.handlers.(dst) with
    | None -> t.blocked_no_handler <- t.blocked_no_handler + 1
    | Some f ->
      t.delivered <- t.delivered + 1;
      f ~src payload

let send t ~src ~dst ~size_bytes payload =
  assert (src >= 0 && src < t.n && dst >= 0 && dst < t.n);
  if not t.crashed.(src) then begin
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + size_bytes;
    let dropped_by_filter =
      match t.drop_filter with
      | None -> false
      | Some f -> f ~src ~dst payload
    in
    if src = dst then
      (* Loopback: reliable and nearly instantaneous. *)
      ignore
        (Sim.schedule t.sim ~delay:0.001 (fun () -> deliver t ~src ~dst payload)
          : Sim.handle)
    else if dropped_by_filter then t.filtered <- t.filtered + 1
    else if t.loss > 0.0 && Rng.bool t.rng ~p:t.loss then t.lost <- t.lost + 1
    else begin
      let ship () =
        (* The sender's interface serialises outgoing datagrams: the
           transmission delay of queued packets adds up. This is what
           makes large fan-outs (bigger n) measurably slower. *)
        let link =
          if Hashtbl.length t.overrides = 0 then t.link
          else
            match Hashtbl.find_opt t.overrides (override_key t ~src ~dst) with
            | Some l -> l
            | None -> t.link
        in
        let now = Sim.now t.sim in
        let transmission =
          if link.Latency.bandwidth_mbps = infinity then 0.0
          else float_of_int (size_bytes * 8) /. (link.Latency.bandwidth_mbps *. 1000.0)
        in
        let depart = Float.max now t.egress_free.(src) in
        t.egress_free.(src) <- depart +. transmission;
        let d =
          depart -. now +. transmission +. Latency.sample link.Latency.model t.rng
        in
        ignore
          (Sim.schedule t.sim ~delay:d (fun () -> deliver t ~src ~dst payload)
            : Sim.handle)
      in
      ship ();
      if t.dup > 0.0 && Rng.bool t.rng ~p:t.dup then begin
        t.duplicated <- t.duplicated + 1;
        t.dup_bytes <- t.dup_bytes + size_bytes;
        ship ()
      end
    end
  end

let egress_backlog_ms t ~node =
  Float.max 0.0 (t.egress_free.(node) -. Sim.now t.sim)

let register_metrics t m =
  let module M = Dpu_obs.Metrics in
  M.register_int m "net_sent_total" (fun () -> t.sent);
  M.register_int m "net_delivered_total" (fun () -> t.delivered);
  M.register_int m "net_lost_total" (fun () -> t.lost);
  M.register_int m "net_filtered_total" (fun () -> t.filtered);
  M.register_int m "net_duplicated_total" (fun () -> t.duplicated);
  M.register_int m "net_dup_bytes_total" (fun () -> t.dup_bytes);
  M.register_int m "net_blocked_total" (fun () ->
      t.blocked_crash + t.blocked_partition + t.blocked_no_handler);
  M.register_int m ~labels:[ ("cause", "crash") ] "net_blocked_by_cause_total"
    (fun () -> t.blocked_crash);
  M.register_int m ~labels:[ ("cause", "partition") ] "net_blocked_by_cause_total"
    (fun () -> t.blocked_partition);
  M.register_int m ~labels:[ ("cause", "no-handler") ] "net_blocked_by_cause_total"
    (fun () -> t.blocked_no_handler);
  M.register_int m "net_bytes_total" (fun () -> t.bytes);
  M.register_float m "net_loss_probability" (fun () -> t.loss);
  M.register_float m "net_dup_probability" (fun () -> t.dup)

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    filtered = t.filtered;
    duplicated = t.duplicated;
    dup_bytes = t.dup_bytes;
    blocked = t.blocked_crash + t.blocked_partition + t.blocked_no_handler;
    blocked_crash = t.blocked_crash;
    blocked_partition = t.blocked_partition;
    blocked_no_handler = t.blocked_no_handler;
    bytes = t.bytes;
  }
