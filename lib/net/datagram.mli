(** Simulated unreliable datagram network (the paper's [Net] service).

    Semantics of UDP over a switched LAN: messages may be lost,
    duplicated and reordered (reordering arises naturally from random
    per-packet latency); they are never corrupted. Crashed nodes
    neither send nor receive. Partitions silently drop cross-group
    traffic until healed.

    The payload type is a parameter so the network can be tested in
    isolation and reused under any protocol kernel. *)

type 'a t

type counters = {
  sent : int;  (** datagrams accepted from senders *)
  delivered : int;  (** datagrams handed to a receiver *)
  lost : int;  (** dropped by the stochastic loss process *)
  filtered : int;  (** dropped by the injected {!set_drop_filter} *)
  duplicated : int;  (** extra copies injected *)
  dup_bytes : int;
      (** payload bytes of those extra copies. [bytes] counts each
          datagram once at {!send}; a duplicated datagram occupies the
          wire twice, so total wire traffic attributable to the
          duplication process is [dup_bytes] on top of [bytes]. *)
  blocked : int;  (** total of the three [blocked_*] causes below *)
  blocked_crash : int;  (** dropped at arrival: destination crashed *)
  blocked_partition : int;  (** dropped at arrival: cross-partition *)
  blocked_no_handler : int;  (** dropped at arrival: no handler installed *)
  bytes : int;  (** payload bytes accepted *)
}

val create :
  Dpu_engine.Sim.t ->
  n:int ->
  ?rng:Dpu_engine.Rng.t ->
  ?loss:float ->
  ?dup:float ->
  ?link:Latency.link ->
  unit ->
  'a t
(** [create sim ~n ()] is a network of nodes [0 .. n-1].
    [loss] and [dup] are iid per-datagram probabilities (default 0).
    [rng] drives the loss/dup/latency draws (default: a [Rng.split] of
    the simulator's root — a fabric passes each group's network its own
    keyed substream so the draws are independent of group count). *)

val size : 'a t -> int
(** Number of nodes. *)

val sim : 'a t -> Dpu_engine.Sim.t

val set_handler : 'a t -> node:int -> (src:int -> 'a -> unit) -> unit
(** Install the receive callback of [node]; replaces any previous one.
    Datagrams arriving at a node with no handler are counted as blocked. *)

val send : 'a t -> src:int -> dst:int -> size_bytes:int -> 'a -> unit
(** Queue a datagram. Self-sends are delivered with minimal delay and
    are never lost. *)

val crash : 'a t -> int -> unit
(** Silence a node (fail-stop unless later {!recover}ed). In-flight
    datagrams to it are discarded at arrival time. *)

val recover : 'a t -> int -> unit
(** Un-crash a node: it sends and receives again, and its egress clock
    is reset to the current virtual time (a rebooted interface has no
    queued transmissions). Datagrams addressed to it while it was down
    stay lost. *)

val is_crashed : 'a t -> int -> bool

val correct_nodes : 'a t -> int list
(** Nodes not crashed, ascending. *)

val partition : 'a t -> int list list -> unit
(** Install a partition: nodes in different groups cannot communicate.
    Nodes absent from every group form an implicit extra group. *)

val heal : 'a t -> unit
(** Remove any partition. *)

val set_loss : 'a t -> float -> unit

val loss : 'a t -> float

val set_dup : 'a t -> float -> unit

val dup : 'a t -> float

val set_drop_filter : 'a t -> (src:int -> dst:int -> 'a -> bool) option -> unit
(** Test hook: when the filter returns [true] the datagram is dropped
    (counted as [filtered], not [lost]). Applied before the iid loss
    process; the loss process draws no random bit for filtered
    datagrams, so installing a filter does not perturb the RNG
    stream of the survivors. *)

val set_link_override : 'a t -> src:int -> dst:int -> Latency.link option -> unit
(** Give one directed pair its own link (e.g. a slow WAN hop in an
    otherwise LAN-like deployment); [None] restores the default. The
    sender's interface still serialises all of its traffic. *)

val counters : 'a t -> counters

val register_metrics : 'a t -> Dpu_obs.Metrics.t -> unit
(** Export every {!counters} field (plus [net_blocked_by_cause_total]
    labelled by cause and the current loss/dup probabilities) as
    snapshot-time callbacks — no per-datagram cost. *)

val egress_backlog_ms : 'a t -> node:int -> float
(** How far ahead of the current virtual time the node's interface is
    booked: the queueing delay a datagram sent now would experience
    before transmission begins. 0 when the interface is idle. *)
