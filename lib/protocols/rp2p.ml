open Dpu_kernel

type Payload.t +=
  | Send of { dst : int; size : int; payload : Payload.t }
  | Recv of { src : int; payload : Payload.t }

(* Wire format, multiplexed over the [net] service. [attempt] plays the
   role of a TCP timestamp option: the ack echoes which transmission it
   answers, so the sender can take an RTT sample even from packets that
   were retransmitted (escaping Karn's ambiguity — essential when the
   true round-trip exceeds the initial timeout, where otherwise no
   sample would ever be taken). *)
type Payload.t +=
  | Wire_data of { src : int; seq : int; attempt : int; size : int; payload : Payload.t }
  | Wire_ack of { src : int; seq : int; attempt : int }

let () =
  Payload.register_printer (function
    | Send { dst; size; _ } -> Some (Printf.sprintf "rp2p.send dst=%d size=%d" dst size)
    | Recv { src; _ } -> Some (Printf.sprintf "rp2p.recv src=%d" src)
    | Wire_data { src; seq; attempt; _ } ->
      Some (Printf.sprintf "rp2p.data src=%d seq=%d try=%d" src seq attempt)
    | Wire_ack { src; seq; attempt } ->
      Some (Printf.sprintf "rp2p.ack src=%d seq=%d try=%d" src seq attempt)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"rp2p"
    ~encode:(function
      | Send { dst; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w dst;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Recv { src; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w src;
            Wire.W.str w (Payload.encode_exn payload))
      | Wire_data { src; seq; attempt; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w src;
            Wire.W.int w seq;
            Wire.W.int w attempt;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Wire_ack { src; seq; attempt } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.int w src;
            Wire.W.int w seq;
            Wire.W.int w attempt)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let dst = Wire.R.int r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Send { dst; size; payload }
      | 1 ->
        let src = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Recv { src; payload }
      | 2 ->
        let src = Wire.R.int r in
        let seq = Wire.R.int r in
        let attempt = Wire.R.int r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Wire_data { src; seq; attempt; size; payload }
      | 3 ->
        let src = Wire.R.int r in
        let seq = Wire.R.int r in
        let attempt = Wire.R.int r in
        Wire_ack { src; seq; attempt }
      | c -> raise (Wire.Error (Printf.sprintf "rp2p: bad case %d" c)))

type config = {
  rto_ms : float;
  backoff : float;
  max_rto_ms : float;
  max_retries : int;
  adaptive : bool;
}

let default_config =
  { rto_ms = 10.0; backoff = 1.5; max_rto_ms = 1_000.0; max_retries = 40; adaptive = true }

let protocol_name = "rp2p"

type stats = { accepted : int; delivered : int; retransmissions : int; gave_up : int }

let k_accepted = "rp2p.accepted"
let k_delivered = "rp2p.delivered"
let k_retrans = "rp2p.retransmissions"
let k_gave_up = "rp2p.gave_up"

let bump stack key = Stack.set_env stack key (Stack.get_env stack key ~default:0 + 1)

let stats stack =
  {
    accepted = Stack.get_env stack k_accepted ~default:0;
    delivered = Stack.get_env stack k_delivered ~default:0;
    retransmissions = Stack.get_env stack k_retrans ~default:0;
    gave_up = Stack.get_env stack k_gave_up ~default:0;
  }

(* An unacknowledged outgoing datagram and its retransmission state.
   [sent_at] records the send time of every attempt so the echoed
   attempt number in the ack yields an unambiguous RTT sample. *)
type pending = {
  mutable tries : int;
  mutable timer : Dpu_runtime.Clock.timer option;
  mutable sent_at : (int * float) list;  (* attempt -> send time *)
}

(* Jacobson/Karels round-trip estimation, one estimator per peer. Under
   load the per-hop delay includes NIC queueing, and a fixed timeout
   below the actual RTT triggers a retransmission storm that feeds the
   very queue that caused it; adapting the timeout to the measured RTT
   is what breaks that loop. *)
type rtt = {
  mutable srtt : float;
  mutable rttvar : float;
  mutable valid : bool;
  mutable storm_backoff : float;
      (* persistent per-peer multiplier: doubled on every timeout,
         reset by a fresh RTT sample (which, thanks to the per-attempt
         ack echo, every successful exchange provides). Without the
         persistence, each new packet restarts its own backoff at a
         stale (too small) timeout and a transient queue becomes a
         self-sustaining retransmission storm. *)
}

let ack_size = 32

let install ?(config = default_config) stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.rp2p ]
    ~requires:[ Service.net ]
    (fun stack _self ->
      let next_seq = ref 0 in
      (* (dst, seq) -> retransmission state *)
      let pending : (int * int, pending) Hashtbl.t = Hashtbl.create 64 in
      (* src -> set of already-delivered sequence numbers *)
      let seen : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
      let rtts : (int, rtt) Hashtbl.t = Hashtbl.create 8 in
      let rto_keys : (int, string) Hashtbl.t = Hashtbl.create 8 in
      let rto_key dst =
        match Hashtbl.find_opt rto_keys dst with
        | Some k -> k
        | None ->
          let k = Printf.sprintf "rp2p.rto_us.%d" dst in
          Hashtbl.replace rto_keys dst k;
          k
      in
      let now () = Stack.now stack in
      let seen_of src =
        match Hashtbl.find_opt seen src with
        | Some s -> s
        | None ->
          let s = Hashtbl.create 128 in
          Hashtbl.replace seen src s;
          s
      in
      let rtt_of dst =
        match Hashtbl.find_opt rtts dst with
        | Some r -> r
        | None ->
          let r =
            { srtt = config.rto_ms /. 2.0; rttvar = config.rto_ms /. 4.0; valid = false;
              storm_backoff = 1.0 }
          in
          Hashtbl.replace rtts dst r;
          r
      in
      let rto dst =
        if not config.adaptive then config.rto_ms
        else begin
          let r = rtt_of dst in
          let base =
            if r.valid then Float.max config.rto_ms (r.srtt +. (4.0 *. r.rttvar))
            else config.rto_ms
          in
          Float.min (base *. r.storm_backoff) config.max_rto_ms
        end
      in
      let record_rtt dst sample =
        let r = rtt_of dst in
        r.storm_backoff <- 1.0;
        if r.valid then begin
          let err = sample -. r.srtt in
          r.srtt <- r.srtt +. (0.125 *. err);
          r.rttvar <- r.rttvar +. (0.25 *. (Float.abs err -. r.rttvar))
        end
        else begin
          r.srtt <- sample;
          r.rttvar <- sample /. 2.0;
          r.valid <- true
        end
      in
      let udp_send ~dst ~size payload =
        Stack.call stack Service.net (Udp.Send { dst; size; payload })
      in
      let rec arm ~dst ~seq ~size payload (p : pending) =
        let delay =
          Float.min config.max_rto_ms
            (rto dst *. (config.backoff ** float_of_int p.tries))
        in
        Stack.set_env stack (rto_key dst) (int_of_float (delay *. 1000.0));
        let h =
          Stack.after stack ~delay (fun () ->
              if Hashtbl.mem pending (dst, seq) then begin
                if p.tries >= config.max_retries then begin
                  Hashtbl.remove pending (dst, seq);
                  bump stack k_gave_up
                end
                else begin
                  p.tries <- p.tries + 1;
                  p.sent_at <- (p.tries, now ()) :: p.sent_at;
                  let r = rtt_of dst in
                  r.storm_backoff <- Float.min 128.0 (r.storm_backoff *. 2.0);
                  bump stack k_retrans;
                  udp_send ~dst ~size
                    (Wire_data { src = me; seq; attempt = p.tries; size; payload });
                  arm ~dst ~seq ~size payload p
                end
              end)
        in
        p.timer <- Some h
      in
      let send ~dst ~size payload =
        bump stack k_accepted;
        let seq = !next_seq in
        incr next_seq;
        udp_send ~dst ~size (Wire_data { src = me; seq; attempt = 0; size; payload });
        let p = { tries = 0; timer = None; sent_at = [ (0, now ()) ] } in
        Hashtbl.replace pending (dst, seq) p;
        arm ~dst ~seq ~size payload p
      in
      let on_wire src payload =
        match payload with
        | Wire_data { src = origin; seq; attempt; size = _; payload } ->
          (* Always re-ack: the previous ack may have been lost. *)
          udp_send ~dst:src ~size:ack_size (Wire_ack { src = me; seq; attempt });
          let s = seen_of origin in
          if not (Hashtbl.mem s seq) then begin
            Hashtbl.replace s seq ();
            bump stack k_delivered;
            Stack.indicate stack Service.rp2p (Recv { src = origin; payload })
          end
        | Wire_ack { src = acker; seq; attempt } -> (
          match Hashtbl.find_opt pending (acker, seq) with
          | None -> ()
          | Some p ->
            (match p.timer with
            | Some h -> Dpu_runtime.Clock.cancel h
            | None -> ());
            (match List.assoc_opt attempt p.sent_at with
            | Some sent -> record_rtt acker (now () -. sent)
            | None -> ());
            Hashtbl.remove pending (acker, seq))
        | _ -> ()
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Send { dst; size; payload } -> send ~dst ~size payload
            | _ -> ());
        handle_indication =
          (fun svc p ->
            match p with
            | Udp.Recv { src; payload } when Service.equal svc Service.net ->
              on_wire src payload
            | _ -> ());
        on_stop =
          (fun () ->
            (* Finalisation (the Maestro baseline tears stacks down):
               stop retransmitting everything still in flight. *)
            (* dpu-lint: allow hashtbl-iter — cancelling every timer is order-insensitive *)
            Hashtbl.iter
              (fun _ p ->
                match p.timer with
                | Some h -> Dpu_runtime.Clock.cancel h
                | None -> ())
              pending;
            Hashtbl.clear pending);
      })

let spec =
  Spec.make ~service:(Service.name Service.rp2p) ~roles:[ "sender"; "receiver" ]
    ~kinds:
      [
        Spec.kind ~payload:true ~role:"sender" "rp2p.msg";
        Spec.kind ~role:"receiver" "rp2p.ack";
      ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "queued";
        Spec.t "queued" (Spec.Emit "rp2p.msg") "sent";
        Spec.t "sent" (Spec.Recv "rp2p.msg") "arrived";
        Spec.t "arrived" (Spec.Emit "rp2p.ack") "acked";
        Spec.t "acked" (Spec.Recv "rp2p.ack") "confirmed";
        Spec.t "confirmed" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Exactly_once ] ()

let register ?config system =
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.rp2p ] ~requires:[ Service.net ] ~spec
    (fun stack -> install ?config stack)
