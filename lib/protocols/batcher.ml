open Dpu_kernel

type config = { max_batch : int; max_delay_ms : float }

let default = { max_batch = 16; max_delay_ms = 2.0 }

let validate cfg =
  if cfg.max_batch < 1 then invalid_arg "Batcher: max_batch < 1";
  if cfg.max_delay_ms < 0.0 then invalid_arg "Batcher: negative max_delay_ms"

module Trigger = struct
  type t = {
    stack : Stack.t;
    config : config;
    fire : unit -> unit;
    mutable timer : Dpu_runtime.Clock.timer option;
  }

  let create stack config ~fire =
    validate config;
    { stack; config; fire; timer = None }

  let cancel t =
    match t.timer with
    | None -> ()
    | Some tm ->
      Dpu_runtime.Clock.cancel tm;
      t.timer <- None

  let force t =
    cancel t;
    t.fire ()

  let notify t ~pending =
    if pending >= t.config.max_batch then force t
    else if pending <= 0 then cancel t
    else
      match t.timer with
      | Some _ -> ()
      | None ->
        t.timer <-
          Some
            (Stack.after t.stack ~delay:t.config.max_delay_ms (fun () ->
                 t.timer <- None;
                 t.fire ()))
end

type 'a t = {
  trigger : Trigger.t;
  mutable pending : 'a list; (* newest first *)
  mutable count : int;
}

let create stack config ~flush =
  let rec t =
    lazy
      {
        trigger =
          Trigger.create stack config ~fire:(fun () ->
              let self = Lazy.force t in
              if self.count > 0 then begin
                let batch = List.rev self.pending in
                self.pending <- [];
                self.count <- 0;
                flush batch
              end);
        pending = [];
        count = 0;
      }
  in
  Lazy.force t

let add t x =
  t.pending <- x :: t.pending;
  t.count <- t.count + 1;
  Trigger.notify t.trigger ~pending:t.count

let flush t = Trigger.force t.trigger

let pending t = t.count
