open Dpu_kernel

type iid = { epoch : int; k : int }

let iid_compare a b =
  let c = compare a.epoch b.epoch in
  if c <> 0 then c else compare a.k b.k

let pp_iid { epoch; k } = Printf.sprintf "%d:%d" epoch k

let write_iid w { epoch; k } =
  Wire.W.int w epoch;
  Wire.W.int w k

let read_iid r =
  let epoch = Wire.R.int r in
  let k = Wire.R.int r in
  { epoch; k }

type Payload.t +=
  | Propose of { iid : iid; value : Payload.t; weight : int }
  | Decide of { iid : iid; value : Payload.t }
  | No_value

let () =
  Payload.register_printer (function
    | Propose { iid; _ } -> Some (Printf.sprintf "consensus.propose %s" (pp_iid iid))
    | Decide { iid; _ } -> Some (Printf.sprintf "consensus.decide %s" (pp_iid iid))
    | No_value -> Some "consensus.no-value"
    | _ -> None)

let () =
  Payload.register_codec ~tag:"consensus"
    ~encode:(function
      | Propose { iid; value; weight } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            write_iid w iid;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w weight)
      | Decide { iid; value } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            write_iid w iid;
            Wire.W.str w (Payload.encode_exn value))
      | No_value -> Some (fun w -> Wire.W.u8 w 2)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let iid = read_iid r in
        let value = Payload.decode (Wire.R.str r) in
        let weight = Wire.R.int r in
        Propose { iid; value; weight }
      | 1 ->
        let iid = read_iid r in
        let value = Payload.decode (Wire.R.str r) in
        Decide { iid; value }
      | 2 -> No_value
      | c -> raise (Wire.Error (Printf.sprintf "consensus: bad case %d" c)))
