(** The [RP2P] module of Fig. 4: reliable point-to-point channels over
    the unreliable [net] service.

    Implements positive acknowledgement with retransmission and
    duplicate suppression: every datagram accepted by {!Send} is
    delivered to a correct, connected destination exactly once,
    regardless of network loss and duplication (up to the retry
    budget — channels are quasi-reliable: retransmission gives up after
    [max_retries] attempts, which only happens when the destination is
    crashed or partitioned away for the whole backoff horizon).

    Delivery order is not guaranteed (like the paper's stack, ordering
    is the business of the layers above). *)

open Dpu_kernel

type Payload.t +=
  | Send of { dst : int; size : int; payload : Payload.t }  (** call *)
  | Recv of { src : int; payload : Payload.t }  (** indication *)

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | Wire_data of {
      src : int;
      seq : int;
      attempt : int;
      size : int;
      payload : Payload.t;
    }
  | Wire_ack of { src : int; seq : int; attempt : int }

type config = {
  rto_ms : float;  (** initial retransmission timeout *)
  backoff : float;  (** multiplicative timeout growth per retry *)
  max_rto_ms : float;  (** backoff ceiling *)
  max_retries : int;  (** give-up bound *)
  adaptive : bool;
      (** Jacobson/Karels RTT estimation with a persistent per-peer
          storm backoff. With [false] the timeout is the fixed
          [rto_ms]: under load, queueing pushes the real round-trip
          past it and every retransmission feeds the queue further —
          the congestion collapse the ablation bench demonstrates. *)
}

val default_config : config

val protocol_name : string
(** ["rp2p"] *)

val install : ?config:config -> Stack.t -> Stack.module_

val register : ?config:config -> System.t -> unit

(** {1 Introspection (tests, benches)} *)

type stats = { accepted : int; delivered : int; retransmissions : int; gave_up : int }

val stats : Stack.t -> stats
(** Statistics of the rp2p module in [stack]; zeros if absent. *)
