(** The [CT] module of Fig. 4: Chandra–Toueg ◇S consensus with a
    rotating coordinator [5], providing the {!Consensus_iface} service.

    Multi-instance: each instance is an [(epoch, k)] pair; the epoch
    keeps streams of different protocol generations disjoint (see
    {!Consensus_iface.iid}). The module survives replacements of the
    protocols above it — it keeps providing service *while* e.g. the
    ABcast implementation is being updated.

    Round structure (round [r], coordinator [c = (k + r) mod n]):
    + every process sends its timestamped estimate to [c];
    + [c] waits for a majority, adopts the estimate with the highest
      timestamp (ties prefer heavier, then lower sender id), proposes;
    + a process that receives the proposal adopts it and acks; one
      whose failure detector suspects [c] nacks (paced, to avoid retry
      storms); either way it proceeds to round [r+1];
    + on a majority of acks, [c] reliably broadcasts the decision.

    Engineering details that matter under load: instance wake-ups are
    rebroadcast until decision (late-created participants still join);
    suspicion-driven round retries are paced; a participant may refine
    its initial (timestamp-0) estimate, so batched proposals are not
    starved by fast empty ones.

    Safety holds with any failure-detector output; termination needs a
    majority of correct processes and ◇S-quality detection, which
    {!Fd} provides in runs with bounded delays. *)

open Dpu_kernel

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | W_estimate of {
      iid : Consensus_iface.iid;
      round : int;
      from : int;
      value : Payload.t;
      ts : int;
      weight : int;
    }
  | W_propose of {
      iid : Consensus_iface.iid;
      round : int;
      value : Payload.t;
      weight : int;
    }
  | W_ack of { iid : Consensus_iface.iid; round : int; from : int }
  | W_nack of { iid : Consensus_iface.iid; round : int; from : int }
  | W_decide of { iid : Consensus_iface.iid; value : Payload.t }
  | W_wakeup of { iid : Consensus_iface.iid }

val protocol_name : string
(** ["consensus.ct"] *)

val install : ?service:Service.t -> n:int -> Stack.t -> Stack.module_
(** [service] defaults to [Service.consensus]; the consensus
    replacement layer instead installs implementations under its
    private implementation service. *)

val register : ?service:Service.t -> ?name:string -> System.t -> unit

val decided_count : Stack.t -> int
(** Number of instances this stack has decided (diagnostics). *)
