open Dpu_kernel

type Payload.t +=
  | Broadcast of { size : int; payload : Payload.t }
  | Deliver of { origin : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Broadcast { size; payload } ->
      Some (Printf.sprintf "abcast size=%d %s" size (Payload.to_string payload))
    | Deliver { origin; payload } ->
      Some (Printf.sprintf "adeliver origin=%d %s" origin (Payload.to_string payload))
    | _ -> None)

let () =
  Payload.register_codec ~tag:"abcast"
    ~encode:(function
      | Broadcast { size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Deliver { origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Broadcast { size; payload }
      | 1 ->
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Deliver { origin; payload }
      | c -> raise (Wire.Error (Printf.sprintf "abcast: bad case %d" c)))

let epoch_key = "abcast.epoch"

let current_epoch stack = Stack.get_env stack epoch_key ~default:0

(* Wire-epoch extractors: each ABcast implementation registers a
   function that recognises its own wire payloads (wrapped in the
   transport indication that carries them) and returns the generation
   tag. [Epoch_buffer] uses this to spot traffic addressed to a
   generation this stack has not yet reached. *)

let epoch_extractors : (Payload.t -> int option) list ref = ref []

let register_wire_epoch f = epoch_extractors := f :: !epoch_extractors

let wire_epoch payload =
  List.find_map (fun f -> f payload) !epoch_extractors
