open Dpu_kernel

type item = { id : Msg.id; size : int; payload : Payload.t }

type Payload.t += Batch of item list

type Payload.t += Disseminate of { epoch : int; item : item }

let () =
  Payload.register_printer (function
    | Batch items -> Some (Printf.sprintf "ct-abcast.batch(%d)" (List.length items))
    | Disseminate { epoch; item } ->
      Some (Printf.sprintf "ct-abcast.disseminate e%d %s" epoch (Msg.id_to_string item.id))
    | _ -> None)

let () =
  let write_item w { id; size; payload } =
    Msg.write_id w id;
    Wire.W.int w size;
    Wire.W.str w (Payload.encode_exn payload)
  in
  let read_item r =
    let id = Msg.read_id r in
    let size = Wire.R.int r in
    let payload = Payload.decode (Wire.R.str r) in
    { id; size; payload }
  in
  Payload.register_codec ~tag:"ct-abcast"
    ~encode:(function
      | Batch items -> Some (fun w -> Wire.W.u8 w 0; Wire.W.list w write_item items)
      | Disseminate { epoch; item } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w epoch;
            write_item w item)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 -> Batch (Wire.R.list r read_item)
      | 1 ->
        let epoch = Wire.R.int r in
        let item = read_item r in
        Disseminate { epoch; item }
      | c -> raise (Wire.Error (Printf.sprintf "ct-abcast: bad case %d" c)))

let () =
  Abcast_iface.register_wire_epoch (function
    | Rbcast.Deliver { payload = Disseminate { epoch; _ }; _ } -> Some epoch
    | Consensus_iface.Decide { iid = { epoch; _ }; _ } -> Some epoch
    | _ -> None)

let protocol_name = "abcast.ct"

let header_size = 64

let install ?(batch_size = 1) ?batching stack =
  let me = Stack.node stack in
  let epoch = Abcast_iface.current_epoch stack in
  Stack.add_module stack ~name:protocol_name
    ~provides:[ Service.abcast ]
    ~requires:[ Service.consensus; Rbcast.service ]
    (fun stack _self ->
      let next_seq = ref 0 in
      let unordered : (Msg.id, item) Hashtbl.t = Hashtbl.create 64 in
      let delivered : (Msg.id, unit) Hashtbl.t = Hashtbl.create 256 in
      let decisions : (int, item list) Hashtbl.t = Hashtbl.create 16 in
      let next_k = ref 0 in
      let proposed = ref false in
      let cap =
        match batching with
        | Some (cfg : Batcher.config) -> cfg.Batcher.max_batch
        | None -> batch_size
      in
      let propose_now () =
        if (not !proposed) && Hashtbl.length unordered > 0 then begin
          let items =
            (* dpu-lint: allow hashtbl-iter — folded items are sorted by id below *)
            Hashtbl.fold (fun _ item acc -> item :: acc) unordered []
            |> List.sort (fun a b -> Msg.id_compare a.id b.id)
          in
          let batch = List.filteri (fun i _ -> i < cap) items in
          let weight = List.fold_left (fun acc i -> acc + i.size) 0 batch in
          proposed := true;
          Stack.call stack Service.consensus
            (Consensus_iface.Propose
               { iid = { epoch; k = !next_k }; value = Batch batch; weight })
        end
      in
      let trigger =
        Option.map
          (fun cfg -> Batcher.Trigger.create stack cfg ~fire:propose_now)
          batching
      in
      let maybe_propose () =
        match trigger with
        | None -> propose_now ()
        | Some tr ->
          if !proposed then ()
          else if Abcast_iface.current_epoch stack <> epoch then
            (* Epoch-boundary flush: once superseded, never hold
               messages for a fuller batch — propose immediately so the
               switch window is not stretched by the batch timer. *)
            Batcher.Trigger.force tr
          else Batcher.Trigger.notify tr ~pending:(Hashtbl.length unordered)
      in
      let rec apply_ready () =
        match Hashtbl.find_opt decisions !next_k with
        | None -> ()
        | Some items ->
          Hashtbl.remove decisions !next_k;
          List.iter
            (fun item ->
              if not (Hashtbl.mem delivered item.id) then begin
                Hashtbl.replace delivered item.id ();
                Hashtbl.remove unordered item.id;
                Stack.indicate stack Service.abcast
                  (Abcast_iface.Deliver { origin = item.id.Msg.origin; payload = item.payload })
              end)
            items;
          incr next_k;
          proposed := false;
          maybe_propose ();
          apply_ready ()
      in
      let on_decide k value =
        if not (Hashtbl.mem decisions k) && k >= !next_k then begin
          let items =
            match value with
            | Batch items -> items
            | Consensus_iface.No_value -> []
            | _ -> []
          in
          Hashtbl.replace decisions k items;
          apply_ready ()
        end
      in
      let on_disseminated item =
        if (not (Hashtbl.mem delivered item.id)) && not (Hashtbl.mem unordered item.id)
        then begin
          Hashtbl.replace unordered item.id item;
          maybe_propose ()
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Abcast_iface.Broadcast { size; payload } ->
              let id = { Msg.origin = me; seq = !next_seq } in
              incr next_seq;
              let item = { id; size; payload } in
              Stack.call stack Rbcast.service
                (Rbcast.Bcast
                   { size = size + header_size; payload = Disseminate { epoch; item } })
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Rbcast.service then
              match p with
              | Rbcast.Deliver { origin = _; payload = Disseminate { epoch = e; item } }
                when e = epoch ->
                on_disseminated item
              | _ -> ()
            else if Service.equal svc Service.consensus then
              match p with
              | Consensus_iface.Decide { iid = { epoch = e; k }; value } when e = epoch ->
                on_decide k value
              | _ -> ());
      })

(* With aggregation on, accepted items are parked in an open proposal
   batch until the trigger fires — a partially-flushed batch is a
   first-class in-flight shape at a switch point, discharged by the
   epoch-boundary force-flush above. *)
let spec ~batched =
  let aggregation =
    if batched then
      [
        Spec.t "pooled" (Spec.Aggregate "ct.propose") "batching";
        Spec.t "batching" (Spec.Flush "ct.propose") "deciding";
      ]
    else [ Spec.t "pooled" (Spec.Emit "ct.propose") "deciding" ]
  in
  Spec.make ~service:(Service.name Service.abcast) ~roles:[ "member" ]
    ~kinds:
      [
        Spec.kind ~payload:true ~role:"member" "ct.disseminate";
        Spec.kind ~payload:true ~role:"member" "ct.propose";
        Spec.kind ~payload:true ~role:"member" "ct.decide";
      ]
    ~transitions:
      ([
         Spec.t "idle" Spec.Accept "accepted";
         Spec.t "accepted" (Spec.Emit "ct.disseminate") "gossiped";
         Spec.t "gossiped" (Spec.Recv "ct.disseminate") "pooled";
       ]
      @ aggregation
      @ [
          Spec.t "deciding" (Spec.Recv "ct.propose") "proposed";
          Spec.t "proposed" (Spec.Emit "ct.decide") "ordered";
          Spec.t "ordered" (Spec.Recv "ct.decide") "decided";
          Spec.t "decided" Spec.Deliver "idle";
        ])
    ~obligations:
      ([ Spec.Total_order; Spec.Exactly_once; Spec.Validity; Spec.Gap_free_gseq ]
      @ if batched then [ Spec.Epoch_flush ] else [])
    ~capabilities:
      ([ Spec.Epoch_tagged_wire ]
      @ if batched then [ Spec.Epoch_flush_on_supersede ] else [])
    ()

let register ?batch_size ?batching system =
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.abcast ]
    ~requires:[ Service.consensus; Rbcast.service ]
    ~spec:(spec ~batched:(batching <> None))
    (fun stack -> install ?batch_size ?batching stack)
