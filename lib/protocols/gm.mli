(** The [GM] module of Fig. 4: group membership on top of atomic
    broadcast [17].

    Membership changes (join, leave, crash exclusion) are proposed via
    the replaceable atomic broadcast service ([r-abcast]): since every
    stack rAdelivers proposals in the same total order, every stack
    goes through the same sequence of views. GM is the paper's example
    of a protocol that *depends on* the updated protocol and must keep
    providing service, unmodified and unaware, while the ABcast
    implementation underneath it is replaced.

    Crash exclusion: when the failure detector suspects a member for
    [exclusion_delay_ms], the smallest-id unsuspected member proposes
    an exclusion. Proposals are idempotent (applied only when
    consistent with the current view), so duplicated or racing
    proposals are harmless. *)

open Dpu_kernel

type view = { id : int; members : int list }

type Payload.t +=
  | Join of int  (** call: propose adding a node to the group *)
  | Leave of int  (** call: propose removing a node *)
  | View of view  (** indication: a new view was installed *)

(** A membership operation as carried on the wire. *)
type op = Op_join | Op_leave | Op_exclude

type Payload.t +=
  | Gm_change of { op : op; target : int }
      (** wire payload: a membership proposal travelling through the
          replaceable ABcast (exposed for wire round-trip tests and
          trace tooling) *)

type config = { exclusion_delay_ms : float }

val default_config : config

val protocol_name : string
(** ["gm"] *)

val install : ?config:config -> ?initial:int list -> n:int -> Stack.t -> Stack.module_
(** [initial] defaults to all of [0 .. n-1]. *)

val register : ?config:config -> ?initial:int list -> System.t -> unit

val current_view : Stack.t -> view option
(** Test hook: the view currently installed in [stack]'s gm module. *)
