(** Future-generation wire-traffic buffer.

    The replacement layer keeps each generation's wire traffic disjoint
    by tagging it with an epoch and filtering on receipt. The filter
    has a hole on the receive side: the reliable transports (rp2p,
    rbcast) acknowledge a datagram when it arrives, so a message tagged
    with a generation whose module is {e not yet installed} at the
    receiver is acknowledged — the sender stops retransmitting — and
    then dropped by every installed module's epoch filter. A node that
    switches late (it was partitioned during the change, or its copy of
    the change message was delayed) therefore loses the new protocol's
    early traffic permanently, and a gap-sensitive protocol such as the
    fixed sequencer deadlocks waiting for a global sequence number that
    will never be resent.

    This module closes the hole. It watches the transport and consensus
    indications, uses {!Abcast_iface.wire_epoch} to recognise
    generation-tagged wire messages addressed to a {e future}
    generation, stashes them, and replays them (re-indicates on the
    original service, in arrival order) when the replacement layer
    announces [Protocol_changed] for that generation. Messages for
    generations the stack already reached pass through untouched; a
    stack that never switches stashes nothing. *)

open Dpu_kernel

val protocol_name : string
(** ["abcast.epoch-buffer"]. *)

val requires : Dpu_kernel.Service.t list
(** The services the buffer listens on (introspection for the static
    analyser; the buffer never calls any of them). *)

val spec : Dpu_kernel.Spec.t
(** Behavioural spec: the buffer's one capability is
    [Buffer_future_epoch] — the safe-update checker requires it in any
    plan whose new protocol tags its wire traffic by epoch, because
    without the buffer a late-switching node loses the successor's
    early traffic permanently. *)

val install : Stack.t -> Stack.module_
(** Add the buffer to [stack]. It provides no service and is never
    bound; it only listens to indications. *)

val stashed : Stack.t -> int
(** Messages stashed so far (observability). *)

val replayed : Stack.t -> int
(** Messages replayed so far (observability). *)
