open Dpu_kernel
module Transport = Dpu_runtime.Transport

type Payload.t +=
  | Send of { dst : int; size : int; payload : Payload.t }
  | Recv of { src : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Send { dst; size; payload } ->
      Some (Printf.sprintf "udp.send dst=%d size=%d %s" dst size (Payload.to_string payload))
    | Recv { src; payload } ->
      Some (Printf.sprintf "udp.recv src=%d %s" src (Payload.to_string payload))
    | _ -> None)

let () =
  Payload.register_codec ~tag:"udp"
    ~encode:(function
      | Send { dst; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w dst;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Recv { src; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w src;
            Wire.W.str w (Payload.encode_exn payload))
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let dst = Wire.R.int r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Send { dst; size; payload }
      | 1 ->
        let src = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Recv { src; payload }
      | c -> raise (Wire.Error (Printf.sprintf "udp: bad case %d" c)))

let protocol_name = "udp"

let install ~transport stack =
  let node = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.net ] ~requires:[]
    (fun stack _self ->
      Transport.set_handler transport ~node (fun ~src payload ->
          if not (Stack.is_crashed stack) then
            Stack.indicate stack Service.net (Recv { src; payload }));
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Send { dst; size; payload } ->
              Transport.send transport ~src:node ~dst ~size_bytes:size payload
            | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.net) ~roles:[ "peer" ]
    ~kinds:[ Spec.kind ~payload:true ~role:"peer" "udp.datagram" ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "queued";
        Spec.t "queued" (Spec.Emit "udp.datagram") "sent";
        Spec.t "sent" (Spec.Recv "udp.datagram") "arrived";
        Spec.t "arrived" Spec.Deliver "idle";
      ]
    ()
(* best-effort: no obligations, no update capabilities *)

let register system =
  let transport = System.transport system in
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.net ] ~requires:[] ~spec
    (fun stack -> install ~transport stack)
