open Dpu_kernel
module Datagram = Dpu_net.Datagram

type Payload.t +=
  | Send of { dst : int; size : int; payload : Payload.t }
  | Recv of { src : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Send { dst; size; payload } ->
      Some (Printf.sprintf "udp.send dst=%d size=%d %s" dst size (Payload.to_string payload))
    | Recv { src; payload } ->
      Some (Printf.sprintf "udp.recv src=%d %s" src (Payload.to_string payload))
    | _ -> None)

let protocol_name = "udp"

let install ~net stack =
  let node = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.net ] ~requires:[]
    (fun stack _self ->
      Datagram.set_handler net ~node (fun ~src payload ->
          if not (Stack.is_crashed stack) then
            Stack.indicate stack Service.net (Recv { src; payload }));
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Send { dst; size; payload } ->
              Datagram.send net ~src:node ~dst ~size_bytes:size payload
            | _ -> ());
      })

let register system =
  let net = System.net system in
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.net ] ~requires:[]
    (fun stack -> install ~net stack)
