open Dpu_kernel

type Payload.t +=
  | Wire_req of { epoch : int; id : Msg.id; size : int; payload : Payload.t }
  | Wire_order of { epoch : int; gseq : int; origin : int; size : int; payload : Payload.t }
  | Wire_order_batch of {
      epoch : int;
      first_gseq : int;
      orders : (int * int * Payload.t) list; (* origin, size, payload *)
    }

let () =
  Payload.register_printer (function
    | Wire_req { epoch; id; _ } ->
      Some (Printf.sprintf "seq-abcast.req e%d %s" epoch (Msg.id_to_string id))
    | Wire_order { epoch; gseq; _ } -> Some (Printf.sprintf "seq-abcast.order e%d #%d" epoch gseq)
    | Wire_order_batch { epoch; first_gseq; orders } ->
      Some
        (Printf.sprintf "seq-abcast.order-batch e%d #%d+%d" epoch first_gseq
           (List.length orders))
    | _ -> None)

let () =
  let write_order w (origin, size, payload) =
    Wire.W.int w origin;
    Wire.W.int w size;
    Wire.W.str w (Payload.encode_exn payload)
  in
  let read_order r =
    let origin = Wire.R.int r in
    let size = Wire.R.int r in
    let payload = Payload.decode (Wire.R.str r) in
    (origin, size, payload)
  in
  Payload.register_codec ~tag:"seq-abcast"
    ~encode:(function
      | Wire_req { epoch; id; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w epoch;
            Msg.write_id w id;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Wire_order { epoch; gseq; origin; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w epoch;
            Wire.W.int w gseq;
            Wire.W.int w origin;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Wire_order_batch { epoch; first_gseq; orders } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w epoch;
            Wire.W.int w first_gseq;
            Wire.W.list w write_order orders)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let epoch = Wire.R.int r in
        let id = Msg.read_id r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Wire_req { epoch; id; size; payload }
      | 1 ->
        let epoch = Wire.R.int r in
        let gseq = Wire.R.int r in
        let origin = Wire.R.int r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Wire_order { epoch; gseq; origin; size; payload }
      | 2 ->
        let epoch = Wire.R.int r in
        let first_gseq = Wire.R.int r in
        let orders = Wire.R.list r read_order in
        Wire_order_batch { epoch; first_gseq; orders }
      | c -> raise (Wire.Error (Printf.sprintf "seq-abcast: bad case %d" c)))

let () =
  Abcast_iface.register_wire_epoch (function
    | Rp2p.Recv
        {
          payload =
            ( Wire_req { epoch; _ }
            | Wire_order { epoch; _ }
            | Wire_order_batch { epoch; _ } );
          _;
        } ->
      Some epoch
    | _ -> None)

let protocol_name = "abcast.seq"

let header_size = 48

let install ?(sequencer = 0) ?batching ~n stack =
  let me = Stack.node stack in
  let epoch = Abcast_iface.current_epoch stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.abcast ]
    ~requires:[ Service.rp2p ]
    (fun stack _self ->
      let next_seq = ref 0 in
      let next_gseq = ref 0 in  (* sequencer role *)
      let next_expected = ref 0 in
      let buffered : (int, int * int * Payload.t) Hashtbl.t = Hashtbl.create 64 in
      (* gseq -> origin, size, payload *)
      let send ~dst ~size payload =
        Stack.call stack Service.rp2p (Rp2p.Send { dst; size; payload })
      in
      let deliver_ready () =
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt buffered !next_expected with
          | None -> continue := false
          | Some (origin, _size, payload) ->
            Hashtbl.remove buffered !next_expected;
            incr next_expected;
            Stack.indicate stack Service.abcast (Abcast_iface.Deliver { origin; payload })
        done
      in
      let sequence ~origin ~size payload =
        let gseq = !next_gseq in
        incr next_gseq;
        let order = Wire_order { epoch; gseq; origin; size; payload } in
        for dst = 0 to n - 1 do
          send ~dst ~size:(size + header_size) order
        done
      in
      (* Sequencer-side batching: aggregate pending requests and assign
         a run of consecutive gseqs in one broadcast round. *)
      let batcher =
        Option.map
          (fun cfg ->
            Batcher.create stack cfg ~flush:(fun orders ->
                let first_gseq = !next_gseq in
                next_gseq := first_gseq + List.length orders;
                let total =
                  List.fold_left (fun acc (_, size, _) -> acc + size) 0 orders
                in
                let batch = Wire_order_batch { epoch; first_gseq; orders } in
                for dst = 0 to n - 1 do
                  send ~dst ~size:(total + header_size) batch
                done))
          batching
      in
      (* Epoch-boundary rule: a batch never spans generations. The
         replacement layer bumps the epoch synchronously while the old
         protocol is still delivering, so after handing indications up
         we check for supersession and flush what is pending — tagged
         with our own (now stale) epoch, which receivers drop
         atomically and Algorithm 1 reissues through the successor. *)
      let flush_if_superseded () =
        match batcher with
        | Some b when Abcast_iface.current_epoch stack <> epoch -> Batcher.flush b
        | _ -> ()
      in
      let sequence_or_batch ~origin ~size payload =
        match batcher with
        | None -> sequence ~origin ~size payload
        | Some b ->
          Batcher.add b (origin, size, payload);
          flush_if_superseded ()
      in
      let insert_order gseq (origin, size, payload) =
        if gseq >= !next_expected && not (Hashtbl.mem buffered gseq) then
          Hashtbl.replace buffered gseq (origin, size, payload)
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Abcast_iface.Broadcast { size; payload } ->
              let id = { Msg.origin = me; seq = !next_seq } in
              incr next_seq;
              send ~dst:sequencer ~size:(size + header_size)
                (Wire_req { epoch; id; size; payload })
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.rp2p then
              match p with
              | Rp2p.Recv { src = _; payload = Wire_req { epoch = e; id; size; payload } }
                when e = epoch && me = sequencer ->
                sequence_or_batch ~origin:id.Msg.origin ~size payload
              | Rp2p.Recv
                  { src = _; payload = Wire_order { epoch = e; gseq; origin; size; payload } }
                when e = epoch ->
                insert_order gseq (origin, size, payload);
                deliver_ready ();
                flush_if_superseded ()
              | Rp2p.Recv
                  { src = _; payload = Wire_order_batch { epoch = e; first_gseq; orders } }
                when e = epoch ->
                List.iteri (fun i order -> insert_order (first_gseq + i) order) orders;
                deliver_ready ();
                flush_if_superseded ()
              | _ -> ());
      })

let spec ~batched =
  let ordering =
    if batched then
      [
        Spec.t "sequencing" (Spec.Aggregate "seq.order-batch") "batching";
        Spec.t "batching" (Spec.Flush "seq.order-batch") "ordered";
        Spec.t "ordered" (Spec.Recv "seq.order-batch") "ready";
      ]
    else
      [
        Spec.t "sequencing" (Spec.Emit "seq.order") "ordered";
        Spec.t "ordered" (Spec.Recv "seq.order") "ready";
      ]
  in
  Spec.make ~service:(Service.name Service.abcast)
    ~roles:[ "member"; "sequencer" ]
    ~kinds:
      [
        Spec.kind ~payload:true ~role:"member" "seq.request";
        Spec.kind ~payload:true ~role:"sequencer" "seq.order";
        Spec.kind ~payload:true ~role:"sequencer" "seq.order-batch";
      ]
    ~transitions:
      ([
         Spec.t "idle" Spec.Accept "pending";
         Spec.t "pending" (Spec.Emit "seq.request") "requested";
         Spec.t "requested" (Spec.Recv "seq.request") "sequencing";
       ]
      @ ordering
      @ [ Spec.t "ready" Spec.Deliver "idle" ])
    ~obligations:
      ([ Spec.Total_order; Spec.Exactly_once; Spec.Validity; Spec.Gap_free_gseq ]
      @ if batched then [ Spec.Epoch_flush ] else [])
    ~capabilities:
      ([ Spec.Epoch_tagged_wire ]
      @ if batched then [ Spec.Epoch_flush_on_supersede ] else [])
    ()

let register ?sequencer ?batching system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.abcast ] ~requires:[ Service.rp2p ]
    ~spec:(spec ~batched:(batching <> None))
    (fun stack -> install ?sequencer ?batching ~n stack)
