(** The [UDP] module of Fig. 4: an interface to the unreliable
    datagram network, exposed as the [net] service.

    Calls: {!Send}. Indications: {!Recv}. Loss, duplication and
    reordering are those of the underlying
    {!Dpu_runtime.Transport} — the simulated datagram network or a
    real socket backend. *)

open Dpu_kernel

type Payload.t +=
  | Send of { dst : int; size : int; payload : Payload.t }
      (** call: transmit [payload] to node [dst] *)
  | Recv of { src : int; payload : Payload.t }
      (** indication: a datagram arrived from [src] *)

val protocol_name : string
(** ["udp"] *)

val install :
  transport:Payload.t Dpu_runtime.Transport.t -> Stack.t -> Stack.module_
(** Add the UDP module to a stack and connect it to the transport
    endpoint of the stack's node. Does not bind it; use
    [Stack.bind stack Service.net m] or a registry. *)

val register : System.t -> unit
(** Register the factory under {!protocol_name} in the system registry,
    providing [Service.net]. *)
