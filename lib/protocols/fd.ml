open Dpu_kernel

type Payload.t +=
  | Suspect of int
  | Restore of int

type Payload.t += Wire_heartbeat of { src : int }

let () =
  Payload.register_printer (function
    | Suspect n -> Some (Printf.sprintf "fd.suspect %d" n)
    | Restore n -> Some (Printf.sprintf "fd.restore %d" n)
    | Wire_heartbeat { src } -> Some (Printf.sprintf "fd.heartbeat src=%d" src)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"fd"
    ~encode:(function
      | Suspect n ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w n)
      | Restore n ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w n)
      | Wire_heartbeat { src } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w src)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 -> Suspect (Wire.R.int r)
      | 1 -> Restore (Wire.R.int r)
      | 2 -> Wire_heartbeat { src = Wire.R.int r }
      | c -> raise (Wire.Error (Printf.sprintf "fd: bad case %d" c)))

type config = {
  period_ms : float;
  timeout_ms : float;
  timeout_increment_ms : float;
}

let default_config = { period_ms = 20.0; timeout_ms = 100.0; timeout_increment_ms = 50.0 }

let protocol_name = "fd"

let heartbeat_size = 32

(* Suspicion state is also mirrored into the stack env (one key per
   monitored node) so tests can observe it without plumbing handles. *)
let k_suspected peer = Printf.sprintf "fd.suspected.%d" peer

let suspects stack =
  let rec collect i acc =
    if i < 0 then acc
    else
      collect (i - 1)
        (if Stack.get_env stack (k_suspected i) ~default:0 = 1 then i :: acc else acc)
  in
  (* Upper bound: env keys exist only for monitored peers; 1024 is a
     safe scan bound for any system we simulate. *)
  collect 1023 []

let install ?(config = default_config) ~n stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.fd ]
    ~requires:[ Service.net ]
    (fun stack _self ->
      let last_seen = Array.make n 0.0 in
      let timeout = Array.make n config.timeout_ms in
      let suspected = Array.make n false in
      let now () = Stack.now stack in
      let beat () =
        for dst = 0 to n - 1 do
          if dst <> me then
            Stack.call stack Service.net
              (Udp.Send { dst; size = heartbeat_size; payload = Wire_heartbeat { src = me } })
        done
      in
      let check () =
        let t = now () in
        for peer = 0 to n - 1 do
          if peer <> me && (not suspected.(peer)) && t -. last_seen.(peer) > timeout.(peer)
          then begin
            suspected.(peer) <- true;
            Stack.set_env stack (k_suspected peer) 1;
            Stack.indicate stack Service.fd (Suspect peer)
          end
        done
      in
      let on_heartbeat src =
        last_seen.(src) <- now ();
        if suspected.(src) then begin
          (* False suspicion: restore and be more patient next time. *)
          suspected.(src) <- false;
          Stack.set_env stack (k_suspected src) 0;
          timeout.(src) <- timeout.(src) +. config.timeout_increment_ms;
          Stack.indicate stack Service.fd (Restore src)
        end
      in
      let timers = ref [] in
      {
        Stack.default_handlers with
        on_start =
          (fun () ->
            let t0 = now () in
            Array.fill last_seen 0 n t0;
            beat ();
            timers :=
              [
                Stack.periodic stack ~period:config.period_ms beat;
                Stack.periodic stack ~period:(config.period_ms /. 2.0) check;
              ]);
        on_stop = (fun () -> List.iter Dpu_runtime.Clock.cancel !timers);
        handle_indication =
          (fun svc p ->
            match p with
            | Udp.Recv { src = _; payload = Wire_heartbeat { src } }
              when Service.equal svc Service.net ->
              on_heartbeat src
            | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.fd) ~roles:[ "monitor" ]
    ~kinds:[ Spec.kind ~role:"monitor" "fd.heartbeat" ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "fd.heartbeat") "beating";
        Spec.t "beating" (Spec.Recv "fd.heartbeat") "idle";
      ]
    ()
(* pure control traffic: losing a heartbeat costs a suspicion, never a payload *)

let register ?config system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.fd ] ~requires:[ Service.net ] ~spec
    (fun stack -> install ?config ~n stack)
