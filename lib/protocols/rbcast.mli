(** Reliable broadcast over reliable point-to-point channels.

    Forward-on-first-receipt: the sender sends to every node; every
    node relays a message the first time it receives it. This gives the
    all-or-nothing agreement among correct processes that the
    Chandra–Toueg reduction of atomic broadcast to consensus needs [5]:
    if any correct process delivers, all correct processes do, even if
    the sender crashed mid-broadcast.

    Relaying costs O(n^2) datagrams per broadcast; [relay:false] turns
    it off for the ablation bench (cheaper, but agreement then depends
    on the sender surviving its send loop). *)

open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }  (** call *)
  | Deliver of { origin : int; payload : Payload.t }  (** indication *)

type Payload.t +=
  | Wire of { origin : int; seq : int; size : int; payload : Payload.t }
      (** wire payload (exposed for wire round-trip tests and trace
          tooling) *)

val protocol_name : string
(** ["rbcast"] *)

val service : Service.t
(** The ["rbcast"] service. *)

val install : ?relay:bool -> n:int -> Stack.t -> Stack.module_

val register : ?relay:bool -> System.t -> unit
