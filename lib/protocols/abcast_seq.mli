(** Fixed-sequencer atomic broadcast.

    A designated sequencer assigns a global sequence number to every
    broadcast and re-broadcasts it; stacks deliver in sequence-number
    order. Two network hops per message and no consensus round, so it
    is faster and flatter under load than the consensus-based variant —
    at the price of a single point of failure (the sequencer) and
    non-uniform delivery. It exists as a genuinely different protocol
    to switch to/from in the DPU experiments: the paper's replacement
    algorithm needs only the ABcast specification, so it swaps between
    this and {!Abcast_ct} freely.

    Fault-tolerance note: if the sequencer crashes this protocol stops
    ordering (group membership on top would elect a new one; out of
    scope, as in the paper's experiments which crash no machine). *)

open Dpu_kernel

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | Wire_req of { epoch : int; id : Msg.id; size : int; payload : Payload.t }
  | Wire_order of {
      epoch : int;
      gseq : int;
      origin : int;
      size : int;
      payload : Payload.t;
    }
  | Wire_order_batch of {
      epoch : int;
      first_gseq : int;
      orders : (int * int * Payload.t) list;
          (** (origin, size, payload) assigned gseqs [first_gseq],
              [first_gseq+1], ... in list order. One epoch per batch —
              see {!Batcher}. *)
    }

val protocol_name : string
(** ["abcast.seq"] *)

val install :
  ?sequencer:int -> ?batching:Batcher.config -> n:int -> Stack.t -> Stack.module_
(** [sequencer] defaults to node 0. With [batching], the sequencer
    aggregates pending requests and assigns a run of consecutive
    global sequence numbers in a single [Wire_order_batch] broadcast —
    one ordering round amortised over up to [max_batch] messages.
    Requesters are unchanged. Without it the code path is exactly the
    unbatched original. *)

val register : ?sequencer:int -> ?batching:Batcher.config -> System.t -> unit
