(** Paxos consensus (single-decree per instance) with an Ω leader
    derived from the failure detector.

    The second, structurally different implementation of the
    {!Consensus_iface} service — the replacement target for the
    consensus-update extension (the paper's §7 / TR [16]): ballots and
    quorum promises instead of rotating coordinators and timestamped
    estimates.

    Per instance:
    + the current leader (lowest unsuspected process) picks a ballot
      [b] unique to it and sends [Prepare(b)] to all acceptors;
    + an acceptor promises [b] if it has promised nothing higher and
      reports the highest-ballot value it has accepted;
    + on a majority of promises the leader proposes the reported value
      with the highest ballot — or, if none, the heaviest of the
      initial offers participants broadcast when proposing — with
      [Accept(b, v)];
    + acceptors accept unless they promised a higher ballot; a majority
      of accepts decides, and the decision is reliably broadcast.

    Liveness: the leader retries with a higher ballot on a timer, and
    leadership follows the failure detector, so a crash of the leader
    stalls an instance only until suspicion. Safety is the classic
    Paxos invariant and does not depend on the failure detector. *)

open Dpu_kernel

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | P_wakeup of { iid : Consensus_iface.iid }
  | P_offer of {
      iid : Consensus_iface.iid;
      value : Payload.t;
      weight : int;
      from : int;
    }
  | P_prepare of { iid : Consensus_iface.iid; ballot : int; from : int }
  | P_promise of {
      iid : Consensus_iface.iid;
      ballot : int;
      accepted : (int * Payload.t * int) option;
      from : int;
    }
  | P_accept of {
      iid : Consensus_iface.iid;
      ballot : int;
      value : Payload.t;
      weight : int;
      from : int;
    }
  | P_accepted of { iid : Consensus_iface.iid; ballot : int; from : int }
  | P_decide of { iid : Consensus_iface.iid; value : Payload.t; weight : int }

type config = { retry_ms : float  (** leader retry period *) }

val default_config : config

val protocol_name : string
(** ["consensus.paxos"] *)

val install : ?config:config -> ?service:Service.t -> n:int -> Stack.t -> Stack.module_

val register : ?config:config -> ?service:Service.t -> ?name:string -> System.t -> unit

val decided_count : Stack.t -> int
