open Dpu_kernel

type view = { id : int; members : int list }

type Payload.t +=
  | Join of int
  | Leave of int
  | View of view

type op =
  | Op_join
  | Op_leave
  | Op_exclude

type Payload.t += Gm_change of { op : op; target : int }

let op_to_string = function
  | Op_join -> "join"
  | Op_leave -> "leave"
  | Op_exclude -> "exclude"

let () =
  Payload.register_printer (function
    | Join t -> Some (Printf.sprintf "gm.join %d" t)
    | Leave t -> Some (Printf.sprintf "gm.leave %d" t)
    | View { id; members } ->
      Some
        (Printf.sprintf "gm.view %d {%s}" id
           (String.concat "," (List.map string_of_int members)))
    | Gm_change { op; target } ->
      Some (Printf.sprintf "gm.change %s %d" (op_to_string op) target)
    | _ -> None)

let () =
  let op_code = function Op_join -> 0 | Op_leave -> 1 | Op_exclude -> 2 in
  Payload.register_codec ~tag:"gm"
    ~encode:(function
      | Join t ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w t)
      | Leave t ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w t)
      | View { id; members } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w id;
            Wire.W.list w Wire.W.int members)
      | Gm_change { op; target } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.u8 w (op_code op);
            Wire.W.int w target)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 -> Join (Wire.R.int r)
      | 1 -> Leave (Wire.R.int r)
      | 2 ->
        let id = Wire.R.int r in
        let members = Wire.R.list r Wire.R.int in
        View { id; members }
      | 3 ->
        let op =
          match Wire.R.u8 r with
          | 0 -> Op_join
          | 1 -> Op_leave
          | 2 -> Op_exclude
          | c -> raise (Wire.Error (Printf.sprintf "gm: bad op %d" c))
        in
        let target = Wire.R.int r in
        Gm_change { op; target }
      | c -> raise (Wire.Error (Printf.sprintf "gm: bad case %d" c)))

type config = { exclusion_delay_ms : float }

let default_config = { exclusion_delay_ms = 200.0 }

let protocol_name = "gm"

let change_size = 64

let k_view_id = "gm.view_id"
let k_members = "gm.members"

let members_to_mask members = List.fold_left (fun acc m -> acc lor (1 lsl m)) 0 members

let mask_to_members mask =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  collect 61 []

let current_view stack =
  let id = Stack.get_env stack k_view_id ~default:(-1) in
  if id < 0 then None
  else
    let members = mask_to_members (Stack.get_env stack k_members ~default:0) in
    Some { id; members }

let install ?(config = default_config) ?initial ~n stack =
  let me = Stack.node stack in
  let initial =
    match initial with
    | Some m -> List.sort_uniq Int.compare m
    | None -> List.init n (fun i -> i)
  in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.gm ]
    ~requires:[ Service.r_abcast; Service.fd ]
    (fun stack _self ->
      let view_id = ref 0 in
      let members = ref initial in
      let suspected = Array.make n false in
      let suspected_since = Array.make n nan in
      let proposed_exclusion : (int, unit) Hashtbl.t = Hashtbl.create 4 in
      let timers = ref [] in
      let publish () =
        Stack.set_env stack k_view_id !view_id;
        Stack.set_env stack k_members (members_to_mask !members);
        Stack.indicate stack Service.gm (View { id = !view_id; members = !members })
      in
      let propose op target =
        Stack.call stack Service.r_abcast
          (Repl_iface.R_broadcast
             { size = change_size; payload = Gm_change { op; target } })
      in
      let apply op target =
        let is_member = List.mem target !members in
        let consistent =
          match op with
          | Op_join -> not is_member
          | Op_leave | Op_exclude -> is_member
        in
        if consistent then begin
          (match op with
          | Op_join -> members := List.sort Int.compare (target :: !members)
          | Op_leave | Op_exclude ->
            members := List.filter (fun m -> m <> target) !members;
            Hashtbl.remove proposed_exclusion target);
          incr view_id;
          publish ()
        end
      in
      let check_exclusions () =
        let t = Stack.now stack in
        (* Only the smallest-id member that is not itself suspected
           proposes, to avoid a proposal storm; idempotence covers the
           rest. *)
        let proposer =
          List.find_opt (fun m -> not suspected.(m)) !members
        in
        if proposer = Some me && List.mem me !members then
          List.iter
            (fun m ->
              if
                m <> me && suspected.(m)
                && (not (Float.is_nan suspected_since.(m)))
                && t -. suspected_since.(m) >= config.exclusion_delay_ms
                && not (Hashtbl.mem proposed_exclusion m)
              then begin
                Hashtbl.replace proposed_exclusion m ();
                propose Op_exclude m
              end)
            !members
      in
      {
        on_start =
          (fun () ->
            publish ();
            timers :=
              [ Stack.periodic stack ~period:(config.exclusion_delay_ms /. 2.0) check_exclusions ]);
        on_stop = (fun () -> List.iter Dpu_runtime.Clock.cancel !timers);
        handle_call =
          (fun _svc p ->
            match p with
            | Join target -> propose Op_join target
            | Leave target -> propose Op_leave target
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.r_abcast then
              match p with
              | Repl_iface.R_deliver { origin = _; payload = Gm_change { op; target } } ->
                apply op target
              | _ -> ()
            else if Service.equal svc Service.fd then
              match p with
              | Fd.Suspect q when q < n ->
                suspected.(q) <- true;
                suspected_since.(q) <- Stack.now stack
              | Fd.Restore q when q < n ->
                suspected.(q) <- false;
                suspected_since.(q) <- nan
              | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.gm) ~roles:[ "member" ]
    ~kinds:[ Spec.kind ~role:"member" "gm.view-change" ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "gm.view-change") "proposed";
        Spec.t "proposed" (Spec.Recv "gm.view-change") "installed";
      ]
    ~obligations:[ Spec.Total_order ] ()
(* views ride the (replaceable) total-order broadcast underneath *)

let register ?config ?initial system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name ~provides:[ Service.gm ]
    ~requires:[ Service.r_abcast; Service.fd ] ~spec
    (fun stack -> install ?config ?initial ~n stack)
