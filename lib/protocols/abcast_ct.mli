(** Consensus-based atomic broadcast (the [ABcast] module of Fig. 4).

    The Chandra–Toueg reduction [5]: payloads are disseminated with
    reliable broadcast; a sequence of consensus instances decides, for
    each slot [k], a batch of not-yet-delivered payloads; every stack
    delivers decided batches in slot order, giving uniform total order.

    As in the paper's prototype, the default proposes one message per
    consensus instance and ships full message contents (not
    identifiers) through consensus — the paper's §6 notes its latency
    figures are high for exactly this reason, and the load/latency
    curve of Fig. 6 is shaped by this queueing. [batch_size] lifts the
    limit for the batching ablation bench.

    The module is epoch-aware: it reads the protocol generation from
    the stack environment at creation and tags all its consensus
    instances and wire traffic with it, so a replacement's new module
    never collides with its predecessor. *)

open Dpu_kernel

type item = { id : Msg.id; size : int; payload : Payload.t }

type Payload.t += Batch of item list
(** The consensus value: a batch of items, sorted by id by the
    proposer; decided batches are applied in that order. *)

type Payload.t += Disseminate of { epoch : int; item : item }
(** The rbcast wire payload (exposed for trace tooling and tests). *)

val protocol_name : string
(** ["abcast.ct"] *)

val install : ?batch_size:int -> ?batching:Batcher.config -> Stack.t -> Stack.module_
(** [batch_size] caps how many items one consensus instance may carry
    (default 1, the paper's prototype). [batching] turns on the
    throughput-mode flush policy instead: propose only once
    [max_batch] messages are pending or the oldest has waited
    [max_delay_ms] ({!Batcher.Trigger}); the cap becomes [max_batch].
    Because the consensus value is the whole {!Batch}, one slot of the
    underlying consensus ({!Consensus_ct}, {!Consensus_paxos} — and
    one {!Repl_consensus} wrapped instance when the replacement layer
    shares the stream) then carries many app payloads. Batches are cut
    from a single epoch; on supersession pending messages are proposed
    immediately rather than held for a fuller batch. *)

val register : ?batch_size:int -> ?batching:Batcher.config -> System.t -> unit
