open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }
  | Deliver of { origin : int; payload : Payload.t }

type Payload.t +=
  | Wire of { origin : int; seq : int; size : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Bcast { size; _ } -> Some (Printf.sprintf "rbcast.bcast size=%d" size)
    | Deliver { origin; _ } -> Some (Printf.sprintf "rbcast.deliver origin=%d" origin)
    | Wire { origin; seq; _ } -> Some (Printf.sprintf "rbcast.wire %d.%d" origin seq)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"rbcast"
    ~encode:(function
      | Bcast { size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Deliver { origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | Wire { origin; seq; size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w origin;
            Wire.W.int w seq;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Bcast { size; payload }
      | 1 ->
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Deliver { origin; payload }
      | 2 ->
        let origin = Wire.R.int r in
        let seq = Wire.R.int r in
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Wire { origin; seq; size; payload }
      | c -> raise (Wire.Error (Printf.sprintf "rbcast: bad case %d" c)))

let protocol_name = "rbcast"

let service = Service.make "rbcast"

let install ?(relay = true) ~n stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ service ]
    ~requires:[ Service.rp2p ]
    (fun stack _self ->
      let next_seq = ref 0 in
      let seen : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
      let send_to_others ~size wire =
        for dst = 0 to n - 1 do
          if dst <> me then
            Stack.call stack Service.rp2p (Rp2p.Send { dst; size; payload = wire })
        done
      in
      let deliver origin payload =
        Stack.indicate stack service (Deliver { origin; payload })
      in
      let on_wire ~origin ~seq ~size payload =
        if not (Hashtbl.mem seen (origin, seq)) then begin
          Hashtbl.replace seen (origin, seq) ();
          if relay then send_to_others ~size (Wire { origin; seq; size; payload });
          deliver origin payload
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Bcast { size; payload } ->
              let seq = !next_seq in
              incr next_seq;
              Hashtbl.replace seen (me, seq) ();
              send_to_others ~size (Wire { origin = me; seq; size; payload });
              deliver me payload
            | _ -> ());
        handle_indication =
          (fun svc p ->
            match p with
            | Rp2p.Recv { src = _; payload = Wire { origin; seq; size; payload } }
              when Service.equal svc Service.rp2p ->
              on_wire ~origin ~seq ~size payload
            | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name service) ~roles:[ "origin"; "relay" ]
    ~kinds:[ Spec.kind ~payload:true ~role:"origin" "rbcast.wire" ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "pending";
        Spec.t "pending" (Spec.Emit "rbcast.wire") "broadcast";
        Spec.t "broadcast" (Spec.Recv "rbcast.wire") "received";
        Spec.t "received" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Validity; Spec.Exactly_once ] ()

let register ?relay system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name ~provides:[ service ]
    ~requires:[ Service.rp2p ] ~spec
    (fun stack -> install ?relay ~n stack)
