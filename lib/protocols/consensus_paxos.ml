open Dpu_kernel
open Consensus_iface

(* Wire messages, multiplexed over rp2p. *)
type Payload.t +=
  | P_wakeup of { iid : iid }
  | P_offer of { iid : iid; value : Payload.t; weight : int; from : int }
  | P_prepare of { iid : iid; ballot : int; from : int }
  | P_promise of {
      iid : iid;
      ballot : int;
      accepted : (int * Payload.t * int) option;  (* ballot, value, weight *)
      from : int;
    }
  | P_accept of { iid : iid; ballot : int; value : Payload.t; weight : int; from : int }
  | P_accepted of { iid : iid; ballot : int; from : int }
  | P_decide of { iid : iid; value : Payload.t; weight : int }

let () =
  Payload.register_printer (function
    | P_wakeup { iid } -> Some (Printf.sprintf "paxos.wakeup %s" (pp_iid iid))
    | P_offer { iid; from; _ } -> Some (Printf.sprintf "paxos.offer %s p%d" (pp_iid iid) from)
    | P_prepare { iid; ballot; from } ->
      Some (Printf.sprintf "paxos.prepare %s b%d p%d" (pp_iid iid) ballot from)
    | P_promise { iid; ballot; from; _ } ->
      Some (Printf.sprintf "paxos.promise %s b%d p%d" (pp_iid iid) ballot from)
    | P_accept { iid; ballot; from; _ } ->
      Some (Printf.sprintf "paxos.accept %s b%d p%d" (pp_iid iid) ballot from)
    | P_accepted { iid; ballot; from } ->
      Some (Printf.sprintf "paxos.accepted %s b%d p%d" (pp_iid iid) ballot from)
    | P_decide { iid; _ } -> Some (Printf.sprintf "paxos.decision %s" (pp_iid iid))
    | _ -> None)

let () =
  let write_accepted w (ballot, value, weight) =
    Wire.W.int w ballot;
    Wire.W.str w (Payload.encode_exn value);
    Wire.W.int w weight
  in
  let read_accepted r =
    let ballot = Wire.R.int r in
    let value = Payload.decode (Wire.R.str r) in
    let weight = Wire.R.int r in
    (ballot, value, weight)
  in
  Payload.register_codec ~tag:"consensus.paxos"
    ~encode:(function
      | P_wakeup { iid } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            write_iid w iid)
      | P_offer { iid; value; weight; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            write_iid w iid;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w weight;
            Wire.W.int w from)
      | P_prepare { iid; ballot; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            write_iid w iid;
            Wire.W.int w ballot;
            Wire.W.int w from)
      | P_promise { iid; ballot; accepted; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            write_iid w iid;
            Wire.W.int w ballot;
            Wire.W.opt w write_accepted accepted;
            Wire.W.int w from)
      | P_accept { iid; ballot; value; weight; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 4;
            write_iid w iid;
            Wire.W.int w ballot;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w weight;
            Wire.W.int w from)
      | P_accepted { iid; ballot; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 5;
            write_iid w iid;
            Wire.W.int w ballot;
            Wire.W.int w from)
      | P_decide { iid; value; weight } ->
        Some
          (fun w ->
            Wire.W.u8 w 6;
            write_iid w iid;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w weight)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 -> P_wakeup { iid = read_iid r }
      | 1 ->
        let iid = read_iid r in
        let value = Payload.decode (Wire.R.str r) in
        let weight = Wire.R.int r in
        let from = Wire.R.int r in
        P_offer { iid; value; weight; from }
      | 2 ->
        let iid = read_iid r in
        let ballot = Wire.R.int r in
        let from = Wire.R.int r in
        P_prepare { iid; ballot; from }
      | 3 ->
        let iid = read_iid r in
        let ballot = Wire.R.int r in
        let accepted = Wire.R.opt r read_accepted in
        let from = Wire.R.int r in
        P_promise { iid; ballot; accepted; from }
      | 4 ->
        let iid = read_iid r in
        let ballot = Wire.R.int r in
        let value = Payload.decode (Wire.R.str r) in
        let weight = Wire.R.int r in
        let from = Wire.R.int r in
        P_accept { iid; ballot; value; weight; from }
      | 5 ->
        let iid = read_iid r in
        let ballot = Wire.R.int r in
        let from = Wire.R.int r in
        P_accepted { iid; ballot; from }
      | 6 ->
        let iid = read_iid r in
        let value = Payload.decode (Wire.R.str r) in
        let weight = Wire.R.int r in
        P_decide { iid; value; weight }
      | c -> raise (Wire.Error (Printf.sprintf "consensus.paxos: bad case %d" c)))

type config = { retry_ms : float }

let default_config = { retry_ms = 50.0 }

let protocol_name = "consensus.paxos"

let header_size = 64

let k_decided = "consensus.paxos.decided"

let decided_count stack = Stack.get_env stack k_decided ~default:0

(* Leader-side state for one ballot attempt. *)
type attempt = {
  ballot : int;
  mutable promises : (int * (int * Payload.t * int) option) list;  (* from, accepted *)
  mutable proposal : (Payload.t * int) option;  (* value sent in phase 2 *)
  mutable accepts : int list;
}

type inst = {
  iid : iid;
  (* acceptor state *)
  mutable promised : int;
  mutable accepted : (int * Payload.t * int) option;
  (* initial values *)
  mutable offer : (Payload.t * int * int) option;  (* value, weight, origin *)
  mutable offered : bool;  (* did we broadcast our own offer *)
  mutable max_ballot_seen : int;
  (* leader state *)
  mutable attempt : attempt option;
  mutable decided : bool;
  mutable retry_timer : Dpu_runtime.Clock.timer option;
  mutable announced : bool;
}

let install ?(config = default_config) ?(service = Service.consensus) ~n stack =
  let me = Stack.node stack in
  let majority = (n / 2) + 1 in
  Stack.add_module stack ~name:protocol_name ~provides:[ service ]
    ~requires:[ Service.rp2p; Service.fd ]
    (fun stack _self ->
      let insts : (iid, inst) Hashtbl.t = Hashtbl.create 64 in
      let suspected = Array.make n false in
      let send ~dst ~size payload =
        Stack.call stack Service.rp2p (Rp2p.Send { dst; size; payload })
      in
      let send_all ~size payload =
        for dst = 0 to n - 1 do
          if dst <> me then send ~dst ~size payload
        done
      in
      let leader () =
        let rec probe i = if i >= n then me else if suspected.(i) then probe (i + 1) else i in
        probe 0
      in
      let get_inst iid =
        match Hashtbl.find_opt insts iid with
        | Some i -> i
        | None ->
          let i =
            {
              iid;
              promised = -1;
              accepted = None;
              offer = None;
              offered = false;
              max_ballot_seen = -1;
              attempt = None;
              decided = false;
              retry_timer = None;
              announced = false;
            }
          in
          Hashtbl.replace insts iid i;
          i
      in
      let weight_of inst = match inst.offer with Some (_, w, _) -> w | None -> 0 in
      let decide inst value weight =
        if not inst.decided then begin
          inst.decided <- true;
          (match inst.retry_timer with
          | Some h -> Dpu_runtime.Clock.cancel h
          | None -> ());
          (* Remember the decision for late short-circuits. *)
          inst.accepted <- Some (max_int, value, weight);
          Stack.set_env stack k_decided (Stack.get_env stack k_decided ~default:0 + 1);
          send_all ~size:(header_size + max weight 0) (P_decide { iid = inst.iid; value; weight });
          Stack.indicate stack service (Decide { iid = inst.iid; value })
        end
      in
      let better_offer a b =
        (* Heavier first, then lower origin: deterministic and favours
           non-empty batches. *)
        match (a, b) with
        | None, o | o, None -> o
        | Some (_, wa, oa), Some (_, wb, ob) ->
          if wa > wb || (wa = wb && oa <= ob) then a else b
      in
      let stash_offer inst value weight origin =
        inst.offer <- better_offer inst.offer (Some (value, weight, origin))
      in
      (* Phase 1: claim a ballot higher than anything seen. *)
      let start_ballot inst =
        if (not inst.decided) && leader () = me then begin
          let round = (max inst.max_ballot_seen 0 / n) + 1 in
          let ballot = (round * n) + me in
          inst.max_ballot_seen <- ballot;
          inst.attempt <- Some { ballot; promises = []; proposal = None; accepts = [] };
          send_all ~size:header_size (P_prepare { iid = inst.iid; ballot; from = me });
          (* Self-promise. *)
          if ballot > inst.promised then begin
            inst.promised <- ballot;
            match inst.attempt with
            | Some a -> a.promises <- [ (me, inst.accepted) ]
            | None -> ()
          end
        end
      in
      let arm_retry inst =
        if inst.retry_timer = None then
          inst.retry_timer <-
            Some
              (Stack.periodic stack ~period:config.retry_ms (fun () ->
                   if not inst.decided then start_ballot inst))
      in
      (* Phase 2 once a majority has promised. *)
      let maybe_propose inst =
        match inst.attempt with
        | Some a when a.proposal = None && List.length a.promises >= majority ->
          let highest_accepted =
            List.fold_left
              (fun acc (_, accepted) ->
                match (acc, accepted) with
                | None, o | o, None -> o
                | (Some (b1, _, _) as o1), (Some (b2, _, _) as o2) ->
                  if b1 >= b2 then o1 else o2)
              None
              (List.map (fun (f, acc_val) -> (f, acc_val)) a.promises)
          in
          let value, weight =
            match highest_accepted with
            | Some (_, v, w) -> (v, w)
            | None -> (
              match inst.offer with
              | Some (v, w, _) -> (v, w)
              | None -> (No_value, -1))
          in
          a.proposal <- Some (value, weight);
          send_all ~size:(header_size + max weight 0)
            (P_accept { iid = inst.iid; ballot = a.ballot; value; weight; from = me });
          (* Self-accept. *)
          if a.ballot >= inst.promised then begin
            inst.promised <- a.ballot;
            inst.accepted <- Some (a.ballot, value, weight);
            a.accepts <- [ me ]
          end
        | Some _ | None -> ()
      in
      let maybe_decide inst =
        match inst.attempt with
        | Some a when List.length a.accepts >= majority -> (
          match a.proposal with
          | Some (v, w) -> decide inst v w
          | None -> ())
        | Some _ | None -> ()
      in
      let announce inst =
        if not inst.announced then begin
          inst.announced <- true;
          let rec loop () =
            if not inst.decided then begin
              send_all ~size:header_size (P_wakeup { iid = inst.iid });
              ignore (Stack.after stack ~delay:200.0 loop : Dpu_runtime.Clock.timer)
            end
          in
          loop ()
        end
      in
      let join inst =
        arm_retry inst;
        if leader () = me && inst.attempt = None then start_ballot inst
      in
      let short_circuit inst dst =
        match inst.accepted with
        | Some (_, v, w) when inst.decided ->
          send ~dst ~size:(header_size + max w 0) (P_decide { iid = inst.iid; value = v; weight = w })
        | Some _ | None -> ()
      in
      let on_propose_call iid value weight =
        let inst = get_inst iid in
        if inst.decided then
          match inst.accepted with
          | Some (_, v, _) -> Stack.indicate stack service (Decide { iid; value = v })
          | None -> ()
        else begin
          stash_offer inst value weight me;
          if not inst.offered then begin
            inst.offered <- true;
            send_all ~size:(header_size + max weight 0)
              (P_offer { iid; value; weight; from = me })
          end;
          announce inst;
          join inst
        end
      in
      let on_wire payload =
        match payload with
        | P_wakeup { iid } ->
          let inst = get_inst iid in
          if inst.decided then () else join inst
        | P_offer { iid; value; weight; from } ->
          let inst = get_inst iid in
          if inst.decided then short_circuit inst from
          else begin
            stash_offer inst value weight from;
            join inst
          end
        | P_prepare { iid; ballot; from } ->
          let inst = get_inst iid in
          if inst.decided then short_circuit inst from
          else begin
            inst.max_ballot_seen <- max inst.max_ballot_seen ballot;
            if ballot > inst.promised then begin
              inst.promised <- ballot;
              send ~dst:from
                ~size:(header_size + match inst.accepted with Some (_, _, w) -> max w 0 | None -> 0)
                (P_promise { iid; ballot; accepted = inst.accepted; from = me })
            end;
            arm_retry inst
          end
        | P_promise { iid; ballot; accepted; from } ->
          let inst = get_inst iid in
          if not inst.decided then begin
            match inst.attempt with
            | Some a when a.ballot = ballot ->
              if not (List.mem_assoc from a.promises) then begin
                a.promises <- (from, accepted) :: a.promises;
                maybe_propose inst;
                maybe_decide inst
              end
            | Some _ | None -> ()
          end
        | P_accept { iid; ballot; value; weight; from } ->
          let inst = get_inst iid in
          if inst.decided then short_circuit inst from
          else begin
            inst.max_ballot_seen <- max inst.max_ballot_seen ballot;
            if ballot >= inst.promised then begin
              inst.promised <- ballot;
              inst.accepted <- Some (ballot, value, weight);
              send ~dst:from ~size:header_size (P_accepted { iid; ballot; from = me })
            end;
            arm_retry inst
          end
        | P_accepted { iid; ballot; from } ->
          let inst = get_inst iid in
          if not inst.decided then begin
            match inst.attempt with
            | Some a when a.ballot = ballot && a.proposal <> None ->
              if not (List.mem from a.accepts) then begin
                a.accepts <- from :: a.accepts;
                maybe_decide inst
              end
            | Some _ | None -> ()
          end
        | P_decide { iid; value; weight } ->
          let inst = get_inst iid in
          if not inst.decided then decide inst value weight
        | _ -> ()
      in
      let on_fd_change () =
        (* Leadership may have moved to us: push stalled instances. *)
        if leader () = me then
          (* dpu-lint: allow hashtbl-iter — folded instances are sorted by iid before use *)
          Hashtbl.fold (fun _ inst acc -> inst :: acc) insts []
          |> List.sort (fun a b -> iid_compare a.iid b.iid)
          |> List.iter (fun inst ->
                 if (not inst.decided) && inst.attempt = None then start_ballot inst)
      in
      ignore weight_of;
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Propose { iid; value; weight } -> on_propose_call iid value weight
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.rp2p then
              match p with
              | Rp2p.Recv { src = _; payload } -> on_wire payload
              | _ -> ()
            else if Service.equal svc Service.fd then
              match p with
              | Fd.Suspect q ->
                if q < n then suspected.(q) <- true;
                on_fd_change ()
              | Fd.Restore q ->
                if q < n then suspected.(q) <- false;
                on_fd_change ()
              | _ -> ());
        on_stop =
          (fun () ->
            (* dpu-lint: allow hashtbl-iter — cancelling every timer is order-insensitive *)
            Hashtbl.iter
              (fun _ inst ->
                match inst.retry_timer with
                | Some h -> Dpu_runtime.Clock.cancel h
                | None -> ())
              insts);
      })

let spec ~service =
  Spec.make ~service:(Service.name service)
    ~roles:[ "proposer"; "acceptor"; "learner" ]
    ~kinds:
      [
        Spec.kind ~role:"proposer" "paxos.prepare";
        Spec.kind ~role:"acceptor" "paxos.promise";
        Spec.kind ~payload:true ~role:"proposer" "paxos.accept";
        Spec.kind ~payload:true ~role:"acceptor" "paxos.learn";
      ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "proposing";
        Spec.t "proposing" (Spec.Emit "paxos.prepare") "preparing";
        Spec.t "preparing" (Spec.Recv "paxos.prepare") "prepared";
        Spec.t "prepared" (Spec.Emit "paxos.promise") "promising";
        Spec.t "promising" (Spec.Recv "paxos.promise") "promised";
        Spec.t "promised" (Spec.Emit "paxos.accept") "accepting";
        Spec.t "accepting" (Spec.Recv "paxos.accept") "accepted";
        Spec.t "accepted" (Spec.Emit "paxos.learn") "learning";
        Spec.t "learning" (Spec.Recv "paxos.learn") "learned";
        Spec.t "learned" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Validity; Spec.Exactly_once ]
    ~capabilities:[ Spec.Slot_scoped_rounds; Spec.Epoch_tagged_wire ] ()

let register ?config ?(service = Service.consensus) ?name system =
  let n = System.n system in
  let name = match name with Some name -> name | None -> protocol_name in
  Registry.register (System.registry system) ~name ~provides:[ service ]
    ~requires:[ Service.rp2p; Service.fd ] ~spec:(spec ~service)
    (fun stack -> install ?config ~service ~n stack)
