(** FIFO-ordered reliable broadcast.

    Strengthens {!Rbcast} with per-sender ordering: two broadcasts by
    the same process are delivered in their sending order at every
    process. Broadcasts by different processes stay unordered — the gap
    between this and total order is exactly what the ABcast protocols
    close.

    Part of the classic broadcast hierarchy of the group-communication
    literature (reliable ⊂ FIFO ⊂ causal ⊂ total [7]); included, as in
    Fortika, as a service upper layers can require. *)

open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }  (** call *)
  | Deliver of { origin : int; payload : Payload.t }
      (** indication — per-origin FIFO *)

type Payload.t +=
  | Tagged of { fseq : int; payload : Payload.t }
      (** wire payload: per-sender sequence tag carried through the
          underlying reliable broadcast (exposed for wire round-trip
          tests and trace tooling) *)

val protocol_name : string
(** ["fifo"] *)

val service : Service.t

val install : n:int -> Stack.t -> Stack.module_

val register : System.t -> unit
