(** Causally ordered reliable broadcast (vector clocks).

    Strengthens {!Fifo_bcast}: if broadcast [m] happened-before
    broadcast [m'] (same sender sent [m] first, or the sender of [m']
    had delivered [m] when it broadcast), every process delivers [m]
    before [m']. Concurrent broadcasts remain unordered.

    Implementation: each broadcast carries the sender's vector clock
    ticked at its own component; a receiver delays delivery until the
    standard causal-delivery condition holds (it has delivered the
    sender's previous broadcast and everything the message causally
    depends on — {!Vclock.deliverable}). *)

open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }  (** call *)
  | Deliver of { origin : int; payload : Payload.t }
      (** indication — causal order *)

type Payload.t +=
  | Stamped of { stamp : int list; origin : int; payload : Payload.t }
      (** wire payload: [payload] carrying [origin]'s ticked vector
          clock (exposed for wire round-trip tests and trace tooling) *)

val protocol_name : string
(** ["causal"] *)

val service : Service.t

val install : n:int -> Stack.t -> Stack.module_

val register : System.t -> unit

val clock : Stack.t -> Vclock.t option
(** The module's current vector clock (diagnostics/tests). *)
