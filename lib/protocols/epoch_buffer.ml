open Dpu_kernel

let protocol_name = "abcast.epoch-buffer"

let k_stashed = "epoch-buffer.stashed"
let k_replayed = "epoch-buffer.replayed"

let stashed stack = Stack.get_env stack k_stashed ~default:0
let replayed stack = Stack.get_env stack k_replayed ~default:0

let bump stack key = Stack.set_env stack key (Stack.get_env stack key ~default:0 + 1)

let requires = [ Service.rp2p; Rbcast.service; Service.consensus; Service.r_abcast ]

let spec =
  Spec.make ~service:(Service.name Service.abcast) ~roles:[ "listener" ]
      (* stash wire traffic tagged with a future generation, replay it
         when the stack reaches that generation *)
    ~capabilities:[ Spec.Buffer_future_epoch ] ()

let install stack =
  Stack.add_module stack ~name:protocol_name ~provides:[] ~requires
    (fun stack _self ->
      let module M = Dpu_obs.Metrics in
      let labels = [ ("node", string_of_int (Stack.node stack)) ] in
      let m_stashed = M.counter (Stack.metrics stack) ~labels "epoch_buffer_stashed_total" in
      let m_replayed =
        M.counter (Stack.metrics stack) ~labels "epoch_buffer_replayed_total"
      in
      (* epoch -> stashed (service, payload) in arrival order (reversed) *)
      let stash : (int, (Service.t * Payload.t) list) Hashtbl.t = Hashtbl.create 4 in
      let replay_up_to generation =
        let ready =
          (* dpu-lint: allow hashtbl-iter — folded epochs are sorted below *)
          Hashtbl.fold
            (fun e msgs acc -> if e <= generation then (e, msgs) :: acc else acc)
            stash []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        List.iter
          (fun (e, msgs) ->
            Hashtbl.remove stash e;
            List.iter
              (fun (svc, payload) ->
                bump stack k_replayed;
                M.incr m_replayed;
                Stack.indicate stack svc payload)
              (List.rev msgs))
          ready
      in
      {
        Stack.default_handlers with
        handle_indication =
          (fun svc p ->
            match p with
            | Repl_iface.Protocol_changed { generation; protocol = _ }
              when Service.equal svc Service.r_abcast ->
              replay_up_to generation
            | _ -> (
              match Abcast_iface.wire_epoch p with
              | Some e when e > Abcast_iface.current_epoch stack ->
                bump stack k_stashed;
                M.incr m_stashed;
                let prev = Option.value ~default:[] (Hashtbl.find_opt stash e) in
                Hashtbl.replace stash e ((svc, p) :: prev)
              | Some _ | None -> ()));
      })
