open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }
  | Deliver of { origin : int; payload : Payload.t }

(* Tag carried through the underlying reliable broadcast. *)
type Payload.t += Tagged of { fseq : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Bcast { size; _ } -> Some (Printf.sprintf "fifo.bcast size=%d" size)
    | Deliver { origin; _ } -> Some (Printf.sprintf "fifo.deliver origin=%d" origin)
    | Tagged { fseq; _ } -> Some (Printf.sprintf "fifo.tagged #%d" fseq)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"fifo"
    ~encode:(function
      | Bcast { size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Deliver { origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | Tagged { fseq; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w fseq;
            Wire.W.str w (Payload.encode_exn payload))
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Bcast { size; payload }
      | 1 ->
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Deliver { origin; payload }
      | 2 ->
        let fseq = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Tagged { fseq; payload }
      | c -> raise (Wire.Error (Printf.sprintf "fifo: bad case %d" c)))

let protocol_name = "fifo"

let service = Service.make "fifo"

let install ~n stack =
  ignore n;
  Stack.add_module stack ~name:protocol_name ~provides:[ service ]
    ~requires:[ Rbcast.service ]
    (fun stack _self ->
      let next_out = ref 0 in
      (* Per-origin reordering buffers: next expected + held-back
         out-of-order arrivals. *)
      let next_in : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let held : (int * int, Payload.t) Hashtbl.t = Hashtbl.create 32 in
      let expected origin =
        match Hashtbl.find_opt next_in origin with Some e -> e | None -> 0
      in
      let deliver_ready origin =
        let continue = ref true in
        while !continue do
          let e = expected origin in
          match Hashtbl.find_opt held (origin, e) with
          | Some payload ->
            Hashtbl.remove held (origin, e);
            Hashtbl.replace next_in origin (e + 1);
            Stack.indicate stack service (Deliver { origin; payload })
          | None -> continue := false
        done
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Bcast { size; payload } ->
              let fseq = !next_out in
              incr next_out;
              Stack.call stack Rbcast.service
                (Rbcast.Bcast { size = size + 16; payload = Tagged { fseq; payload } })
            | _ -> ());
        handle_indication =
          (fun svc p ->
            match p with
            | Rbcast.Deliver { origin; payload = Tagged { fseq; payload } }
              when Service.equal svc Rbcast.service ->
              if fseq >= expected origin then begin
                Hashtbl.replace held (origin, fseq) payload;
                deliver_ready origin
              end
            | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name service) ~roles:[ "sender"; "receiver" ]
    ~kinds:[ Spec.kind ~payload:true ~role:"sender" "fifo.seq" ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "pending";
        Spec.t "pending" (Spec.Emit "fifo.seq") "broadcast";
        Spec.t "broadcast" (Spec.Recv "fifo.seq") "sequenced";
        Spec.t "sequenced" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Fifo_order; Spec.Validity; Spec.Exactly_once ] ()

let register system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name ~provides:[ service ]
    ~requires:[ Rbcast.service ] ~spec
    (fun stack -> install ~n stack)
