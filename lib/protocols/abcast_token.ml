open Dpu_kernel

type order = { gseq : int; origin : int; size : int; payload : Payload.t }

type Payload.t +=
  | Wire_order of { epoch : int; order : order }
  | Wire_token of { epoch : int; era : int; next_gseq : int }
      (* [era] counts token regenerations: a regenerated token carries a
         higher era, and stale-era tokens (the delayed original) are
         dropped on receipt, so regeneration cannot leave two tokens
         circulating *)
  | Wire_repair_req of { epoch : int; gseq : int; from : int }
  | Wire_repair of { epoch : int; order : order }
  | Wire_hello of { epoch : int; from : int }
      (* module instances of one epoch discover each other; the token is
         only passed to peers known to be up, so a module created
         mid-run by a dynamic replacement never swallows the token *)

let () =
  Payload.register_printer (function
    | Wire_order { epoch; order } ->
      Some (Printf.sprintf "token-abcast.order e%d #%d" epoch order.gseq)
    | Wire_token { epoch; era; next_gseq } ->
      Some (Printf.sprintf "token-abcast.token e%d era=%d next=%d" epoch era next_gseq)
    | Wire_repair_req { epoch; gseq; from } ->
      Some (Printf.sprintf "token-abcast.repair-req e%d #%d p%d" epoch gseq from)
    | Wire_repair { epoch; order } ->
      Some (Printf.sprintf "token-abcast.repair e%d #%d" epoch order.gseq)
    | Wire_hello { epoch; from } ->
      Some (Printf.sprintf "token-abcast.hello e%d p%d" epoch from)
    | _ -> None)

let () =
  let write_order w { gseq; origin; size; payload } =
    Wire.W.int w gseq;
    Wire.W.int w origin;
    Wire.W.int w size;
    Wire.W.str w (Payload.encode_exn payload)
  in
  let read_order r =
    let gseq = Wire.R.int r in
    let origin = Wire.R.int r in
    let size = Wire.R.int r in
    let payload = Payload.decode (Wire.R.str r) in
    { gseq; origin; size; payload }
  in
  Payload.register_codec ~tag:"token-abcast"
    ~encode:(function
      | Wire_order { epoch; order } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w epoch;
            write_order w order)
      | Wire_token { epoch; era; next_gseq } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w epoch;
            Wire.W.int w era;
            Wire.W.int w next_gseq)
      | Wire_repair_req { epoch; gseq; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.int w epoch;
            Wire.W.int w gseq;
            Wire.W.int w from)
      | Wire_repair { epoch; order } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.int w epoch;
            write_order w order)
      | Wire_hello { epoch; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 4;
            Wire.W.int w epoch;
            Wire.W.int w from)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let epoch = Wire.R.int r in
        let order = read_order r in
        Wire_order { epoch; order }
      | 1 ->
        let epoch = Wire.R.int r in
        let era = Wire.R.int r in
        let next_gseq = Wire.R.int r in
        Wire_token { epoch; era; next_gseq }
      | 2 ->
        let epoch = Wire.R.int r in
        let gseq = Wire.R.int r in
        let from = Wire.R.int r in
        Wire_repair_req { epoch; gseq; from }
      | 3 ->
        let epoch = Wire.R.int r in
        let order = read_order r in
        Wire_repair { epoch; order }
      | 4 ->
        let epoch = Wire.R.int r in
        let from = Wire.R.int r in
        Wire_hello { epoch; from }
      | c -> raise (Wire.Error (Printf.sprintf "token-abcast: bad case %d" c)))

let () =
  Abcast_iface.register_wire_epoch (function
    | Rp2p.Recv
        {
          payload =
            ( Wire_order { epoch; _ }
            | Wire_token { epoch; _ }
            | Wire_repair_req { epoch; _ }
            | Wire_repair { epoch; _ }
            | Wire_hello { epoch; _ } );
          _;
        } ->
      Some epoch
    | _ -> None)

type config = { regen_timeout_ms : float; repair_timeout_ms : float }

let default_config = { regen_timeout_ms = 500.0; repair_timeout_ms = 50.0 }

let protocol_name = "abcast.token"

let header_size = 48
let token_size = 48

let install ?(config = default_config) ~n stack =
  let me = Stack.node stack in
  let epoch = Abcast_iface.current_epoch stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ Service.abcast ]
    ~requires:[ Service.rp2p; Service.fd ]
    (fun stack _self ->
      let suspected = Array.make n false in
      let ready = Array.make n false in
      ready.(me) <- true;
      let pending : (int * Payload.t) Queue.t = Queue.create () in
      (* All orders ever seen, for delivery and gap repair. *)
      let orders : (int, order) Hashtbl.t = Hashtbl.create 256 in
      let next_expected = ref 0 in
      let max_gseq_seen = ref (-1) in
      let holding = ref false in
      let held_next = ref 0 in  (* next gseq while self-holding *)
      let era = ref 0 in  (* regeneration era of the token we hold/pass *)
      let max_era_seen = ref 0 in
      let last_activity = ref (Stack.now stack) in
      let repair_asked : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let timers = ref [] in
      let now () = Stack.now stack in
      let send ~dst ~size payload =
        Stack.call stack Service.rp2p (Rp2p.Send { dst; size; payload })
      in
      let send_all ~size payload =
        for dst = 0 to n - 1 do
          if dst <> me then send ~dst ~size payload
        done
      in
      let next_holder () =
        (* First ready, unsuspected node after me on the ring; fall back
           to self when no peer is known to be up yet. *)
        let rec probe i =
          if i >= n then me
          else
            let cand = (me + i) mod n in
            if suspected.(cand) || not ready.(cand) then probe (i + 1) else cand
        in
        probe 1
      in
      let deliver_ready () =
        let continue = ref true in
        while !continue do
          match Hashtbl.find_opt orders !next_expected with
          | None -> continue := false
          | Some o ->
            incr next_expected;
            Stack.indicate stack Service.abcast
              (Abcast_iface.Deliver { origin = o.origin; payload = o.payload })
        done
      in
      let record_order o =
        if not (Hashtbl.mem orders o.gseq) then begin
          Hashtbl.replace orders o.gseq o;
          if o.gseq > !max_gseq_seen then max_gseq_seen := o.gseq;
          deliver_ready ()
        end
      in
      let rec hold_token next_gseq =
        last_activity := now ();
        let gseq = ref next_gseq in
        while not (Queue.is_empty pending) do
          let size, payload = Queue.pop pending in
          let o = { gseq = !gseq; origin = me; size; payload } in
          incr gseq;
          record_order o;
          send_all ~size:(size + header_size) (Wire_order { epoch; order = o })
        done;
        let dst = next_holder () in
        if dst = me then begin
          (* Alone (or every peer suspected/not yet up): keep the token
             and retry later; a hello releases it immediately. *)
          holding := true;
          held_next := !gseq;
          ignore
            (Stack.after stack ~delay:config.repair_timeout_ms (fun () ->
                 if !holding then begin
                   holding := false;
                   hold_token !held_next
                 end)
              : Dpu_runtime.Clock.timer)
        end
        else begin
          holding := false;
          Stack.app_event stack ~tag:"token.pass"
            ~data:(Printf.sprintf "e%d era=%d dst=%d next=%d" epoch !era dst !gseq);
          send ~dst ~size:token_size (Wire_token { epoch; era = !era; next_gseq = !gseq })
        end
      in
      let on_token token_era next_gseq =
        last_activity := now ();
        if token_era > !max_era_seen then max_era_seen := token_era;
        (* A token from a superseded era is the delayed original of a
           regeneration: drop it. *)
        if token_era >= !max_era_seen then begin
          era := token_era;
          hold_token next_gseq
        end
      in
      let check_token_loss () =
        if
          now () -. !last_activity > config.regen_timeout_ms
          && (not !holding)
          (* lowest-id unsuspected node regenerates *)
          &&
          let rec lowest i = if suspected.(i) then lowest (i + 1) else i in
          lowest 0 = me
        then begin
          last_activity := now ();
          max_era_seen := !max_era_seen + 1;
          era := !max_era_seen;
          Stack.app_event stack ~tag:"token.regen"
            ~data:(Printf.sprintf "e%d era=%d next=%d" epoch !era (!max_gseq_seen + 1));
          hold_token (!max_gseq_seen + 1)
        end
      in
      let check_gaps () =
        (* Ask peers for any gseq between next_expected and the max we
           have seen that is still missing. *)
        if !max_gseq_seen >= !next_expected then
          for g = !next_expected to !max_gseq_seen do
            if (not (Hashtbl.mem orders g)) && not (Hashtbl.mem repair_asked g) then begin
              Hashtbl.replace repair_asked g ();
              send_all ~size:header_size (Wire_repair_req { epoch; gseq = g; from = me })
            end
          done
      in
      let on_hello from =
        if not ready.(from) then begin
          ready.(from) <- true;
          (* Mutual discovery: the peer may have started before us and
             missed our hello. *)
          send ~dst:from ~size:token_size (Wire_hello { epoch; from = me });
          if !holding then begin
            holding := false;
            hold_token !held_next
          end
        end
      in
      {
        on_start =
          (fun () ->
            send_all ~size:token_size (Wire_hello { epoch; from = me });
            if me = 0 then
              (* Initial token: injected at node 0 shortly after start. *)
              ignore
                (Stack.after stack ~delay:0.1 (fun () -> hold_token 0)
                  : Dpu_runtime.Clock.timer);
            timers :=
              [
                Stack.periodic stack ~period:config.regen_timeout_ms check_token_loss;
                Stack.periodic stack ~period:config.repair_timeout_ms check_gaps;
              ]);
        on_stop = (fun () -> List.iter Dpu_runtime.Clock.cancel !timers);
        handle_call =
          (fun _svc p ->
            match p with
            | Abcast_iface.Broadcast { size; payload } -> Queue.add (size, payload) pending
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.rp2p then
              match p with
              | Rp2p.Recv { src = _; payload = Wire_order { epoch = e; order } }
                when e = epoch ->
                last_activity := now ();
                record_order order
              | Rp2p.Recv { src = _; payload = Wire_token { epoch = e; era; next_gseq } }
                when e = epoch ->
                on_token era next_gseq
              | Rp2p.Recv { src = _; payload = Wire_repair_req { epoch = e; gseq; from } }
                when e = epoch -> (
                match Hashtbl.find_opt orders gseq with
                | Some o ->
                  send ~dst:from ~size:(o.size + header_size) (Wire_repair { epoch; order = o })
                | None -> ())
              | Rp2p.Recv { src = _; payload = Wire_repair { epoch = e; order } }
                when e = epoch ->
                record_order order
              | Rp2p.Recv { src = _; payload = Wire_hello { epoch = e; from } }
                when e = epoch ->
                on_hello from
              | _ -> ()
            else if Service.equal svc Service.fd then
              match p with
              | Fd.Suspect q -> if q < n then suspected.(q) <- true
              | Fd.Restore q -> if q < n then suspected.(q) <- false
              | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name Service.abcast)
    ~roles:[ "holder"; "member" ]
    ~kinds:
      [
        Spec.kind ~role:"holder" "token.token";
        Spec.kind ~payload:true ~role:"holder" "token.order";
        Spec.kind ~payload:true ~role:"member" "token.repair";
      ]
    ~transitions:
      [
        Spec.t "idle" (Spec.Emit "token.token") "passing";
        Spec.t "passing" (Spec.Recv "token.token") "idle";
        Spec.t "idle" Spec.Accept "queued";
        Spec.t "queued" (Spec.Emit "token.order") "ordered";
        Spec.t "ordered" (Spec.Recv "token.order") "ready";
        Spec.t "ready" Spec.Deliver "idle";
      ]
    ~obligations:
      [ Spec.Total_order; Spec.Exactly_once; Spec.Validity; Spec.Gap_free_gseq ]
    ~capabilities:[ Spec.Epoch_tagged_wire ] ()

let register ?config system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name
    ~provides:[ Service.abcast ]
    ~requires:[ Service.rp2p; Service.fd ] ~spec
    (fun stack -> install ?config ~n stack)
