(** The consensus *service* interface.

    Two implementations provide it — {!Consensus_ct} (Chandra–Toueg ◇S,
    rotating coordinator) and {!Consensus_paxos} (Paxos, Ω leader) —
    and the consensus replacement layer ([Dpu_core.Repl_consensus], the
    paper's §7 future work / TR [16]) switches between them on the fly.
    Exactly as with atomic broadcast, callers and the replacement
    machinery depend only on this specification.

    Properties every provider must satisfy, per instance:
    - {e Validity}: a decided value was proposed (or is {!No_value},
      possible only when some participant entered with no value);
    - {e Uniform agreement}: no two processes decide differently;
    - {e Uniform integrity}: at most one decision per process;
    - {e Termination}: with a majority of correct processes and
      eventually accurate failure detection, every correct process
      decides. *)

open Dpu_kernel

type iid = { epoch : int; k : int }
(** Instance identifier: [(epoch, k)]. Epochs keep independent streams
    of instances (e.g. different ABcast protocol generations) disjoint
    on the wire. *)

val iid_compare : iid -> iid -> int

val pp_iid : iid -> string

val write_iid : Wire.W.t -> iid -> unit

val read_iid : Wire.R.t -> iid
(** Wire helpers shared by the consensus providers' codecs. *)

type Payload.t +=
  | Propose of { iid : iid; value : Payload.t; weight : int }
      (** call: propose [value] for [iid]. [weight] breaks initial
          (timestamp-0) ties — bigger wins — letting callers prefer,
          e.g., non-empty batches; it never affects safety. It also
          doubles as the value's byte size for the network model. *)
  | Decide of { iid : iid; value : Payload.t }  (** indication *)
  | No_value
      (** estimate of a process that participates before having
          anything to propose; deciding it means "empty decision" *)
