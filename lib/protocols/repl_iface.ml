open Dpu_kernel

type Payload.t +=
  | R_broadcast of { size : int; payload : Payload.t }
  | R_deliver of { origin : int; payload : Payload.t }
  | Change_abcast of string
  | Protocol_changed of { generation : int; protocol : string }

let () =
  Payload.register_printer (function
    | R_broadcast { size; payload } ->
      Some (Printf.sprintf "r-abcast size=%d %s" size (Payload.to_string payload))
    | R_deliver { origin; payload } ->
      Some (Printf.sprintf "r-adeliver origin=%d %s" origin (Payload.to_string payload))
    | Change_abcast prot -> Some (Printf.sprintf "change-abcast %s" prot)
    | Protocol_changed { generation; protocol } ->
      Some (Printf.sprintf "protocol-changed gen=%d %s" generation protocol)
    | _ -> None)

let () =
  Payload.register_codec ~tag:"r-abcast"
    ~encode:(function
      | R_broadcast { size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | R_deliver { origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | Change_abcast protocol ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.str w protocol)
      | Protocol_changed { generation; protocol } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            Wire.W.int w generation;
            Wire.W.str w protocol)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        R_broadcast { size; payload }
      | 1 ->
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        R_deliver { origin; payload }
      | 2 -> Change_abcast (Wire.R.str r)
      | 3 ->
        let generation = Wire.R.int r in
        let protocol = Wire.R.str r in
        Protocol_changed { generation; protocol }
      | c -> raise (Wire.Error (Printf.sprintf "r-abcast: bad case %d" c)))
