(** Token-ring (privilege-based) atomic broadcast.

    A token carrying the next global sequence number circulates on a
    logical ring. The holder sequences its pending broadcasts, sends
    the order messages to everyone, and passes the token to the next
    node that its failure detector does not suspect. Stacks deliver in
    global sequence order.

    Latency is dominated by the token rotation time (grows with n), a
    third distinct performance profile for the heterogeneous-switch
    experiments.

    Fault handling: crashed nodes are skipped on token passing; a lost
    token (holder crashed while holding) is regenerated after
    [regen_timeout_ms] by the lowest-id unsuspected node; nodes with a
    gap in the order stream request repair from their peers. These
    mechanisms assume the failure detector has stabilised — the usual
    privilege-based broadcast caveat. *)

open Dpu_kernel

type order = { gseq : int; origin : int; size : int; payload : Payload.t }
(** A sequenced broadcast: the token holder assigned [gseq] to
    [origin]'s message. *)

(** Wire payloads (exposed for wire round-trip tests and trace
    tooling). *)
type Payload.t +=
  | Wire_order of { epoch : int; order : order }
  | Wire_token of { epoch : int; era : int; next_gseq : int }
  | Wire_repair_req of { epoch : int; gseq : int; from : int }
  | Wire_repair of { epoch : int; order : order }
  | Wire_hello of { epoch : int; from : int }

type config = {
  regen_timeout_ms : float;  (** token-loss detection horizon *)
  repair_timeout_ms : float;  (** gap-repair request delay *)
}

val default_config : config

val protocol_name : string
(** ["abcast.token"] *)

val install : ?config:config -> n:int -> Stack.t -> Stack.module_

val register : ?config:config -> System.t -> unit
