(** The [FD] module of Fig. 4: a heartbeat failure detector.

    Every process periodically broadcasts a heartbeat over the [net]
    service and suspects any process whose heartbeat has not been seen
    for the current timeout. On a false suspicion (a heartbeat arrives
    from a suspected process) the per-process timeout is increased, so
    in runs with bounded message delays the detector eventually stops
    making mistakes — the behaviour assumed of the ◇S class the paper's
    consensus module relies on [4, 5].

    Indications: {!Suspect} and {!Restore}. Consumers maintain their
    own view of the suspected set from these events. *)

open Dpu_kernel

type Payload.t +=
  | Suspect of int  (** indication: node is now suspected *)
  | Restore of int  (** indication: node is no longer suspected *)

type Payload.t +=
  | Wire_heartbeat of { src : int }
      (** wire payload (exposed for wire round-trip tests and trace
          tooling) *)

type config = {
  period_ms : float;  (** heartbeat period *)
  timeout_ms : float;  (** initial suspicion timeout *)
  timeout_increment_ms : float;  (** added on each false suspicion *)
}

val default_config : config

val protocol_name : string
(** ["fd"] *)

val install : ?config:config -> n:int -> Stack.t -> Stack.module_
(** Monitor nodes [0 .. n-1] (excluding self). *)

val register : ?config:config -> System.t -> unit

val suspects : Stack.t -> int list
(** Currently suspected nodes according to the fd module of [stack]
    (ascending); empty if the module is absent. Test/diagnostic hook —
    protocol modules should consume the indications instead. *)
