open Dpu_kernel

type Payload.t +=
  | Bcast of { size : int; payload : Payload.t }
  | Deliver of { origin : int; payload : Payload.t }

type Payload.t += Stamped of { stamp : int list; origin : int; payload : Payload.t }

let () =
  Payload.register_printer (function
    | Bcast { size; _ } -> Some (Printf.sprintf "causal.bcast size=%d" size)
    | Deliver { origin; _ } -> Some (Printf.sprintf "causal.deliver origin=%d" origin)
    | Stamped { origin; stamp; _ } ->
      Some
        (Printf.sprintf "causal.stamped origin=%d [%s]" origin
           (String.concat ";" (List.map string_of_int stamp)))
    | _ -> None)

let () =
  Payload.register_codec ~tag:"causal"
    ~encode:(function
      | Bcast { size; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            Wire.W.int w size;
            Wire.W.str w (Payload.encode_exn payload))
      | Deliver { origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | Stamped { stamp; origin; payload } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            Wire.W.list w Wire.W.int stamp;
            Wire.W.int w origin;
            Wire.W.str w (Payload.encode_exn payload))
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let size = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Bcast { size; payload }
      | 1 ->
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Deliver { origin; payload }
      | 2 ->
        let stamp = Wire.R.list r Wire.R.int in
        let origin = Wire.R.int r in
        let payload = Payload.decode (Wire.R.str r) in
        Stamped { stamp; origin; payload }
      | c -> raise (Wire.Error (Printf.sprintf "causal: bad case %d" c)))

let protocol_name = "causal"

let service = Service.make "causal"

(* The clock is mirrored into the env so tests can observe it. *)
let k_clock = "causal.clock."

let clock stack =
  let n = Stack.get_env stack (k_clock ^ "n") ~default:0 in
  if n = 0 then None
  else
    Some
      (Vclock.of_list
         (List.init n (fun i -> Stack.get_env stack (k_clock ^ string_of_int i) ~default:0)))

let install ~n stack =
  let me = Stack.node stack in
  Stack.add_module stack ~name:protocol_name ~provides:[ service ]
    ~requires:[ Rbcast.service ]
    (fun stack _self ->
      let vc = ref (Vclock.zero ~n) in
      let publish () =
        Stack.set_env stack (k_clock ^ "n") n;
        List.iteri
          (fun i x -> Stack.set_env stack (k_clock ^ string_of_int i) x)
          (Vclock.to_list !vc)
      in
      publish ();
      (* Messages whose causal dependencies are not yet satisfied. *)
      let waiting : (Vclock.t * int * Payload.t) list ref = ref [] in
      let rec deliver_ready () =
        let progressed = ref false in
        let still =
          List.filter
            (fun (stamp, origin, payload) ->
              if Vclock.deliverable stamp ~at:!vc ~sender:origin then begin
                vc := Vclock.merge !vc stamp;
                publish ();
                Stack.indicate stack service (Deliver { origin; payload });
                progressed := true;
                false
              end
              else true)
            !waiting
        in
        waiting := still;
        (* A delivery may unblock earlier-buffered messages. *)
        if !progressed then deliver_ready ()
      in
      let on_stamped stamp origin payload =
        waiting := !waiting @ [ (stamp, origin, payload) ];
        deliver_ready ()
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Bcast { size; payload } ->
              let stamp = Vclock.tick !vc me in
              (* Local delivery is immediate (the condition holds by
                 construction); remote copies go out stamped. *)
              Stack.call stack Rbcast.service
                (Rbcast.Bcast
                   {
                     size = size + (4 * n);
                     payload = Stamped { stamp = Vclock.to_list stamp; origin = me; payload };
                   })
            | _ -> ());
        handle_indication =
          (fun svc p ->
            match p with
            | Rbcast.Deliver { origin = _; payload = Stamped { stamp; origin; payload } }
              when Service.equal svc Rbcast.service ->
              on_stamped (Vclock.of_list stamp) origin payload
            | _ -> ());
      })

let spec =
  Spec.make ~service:(Service.name service) ~roles:[ "sender"; "receiver" ]
    ~kinds:[ Spec.kind ~payload:true ~role:"sender" "causal.stamped" ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "pending";
        Spec.t "pending" (Spec.Emit "causal.stamped") "broadcast";
        Spec.t "broadcast" (Spec.Recv "causal.stamped") "stamped";
        Spec.t "stamped" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Causal_order; Spec.Validity; Spec.Exactly_once ] ()

let register system =
  let n = System.n system in
  Registry.register (System.registry system) ~name:protocol_name ~provides:[ service ]
    ~requires:[ Rbcast.service ] ~spec
    (fun stack -> install ~n stack)
