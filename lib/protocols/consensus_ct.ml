open Dpu_kernel
open Consensus_iface

(* Wire messages, multiplexed over rp2p. *)
type Payload.t +=
  | W_estimate of { iid : iid; round : int; from : int; value : Payload.t; ts : int; weight : int }
  | W_propose of { iid : iid; round : int; value : Payload.t; weight : int }
  | W_ack of { iid : iid; round : int; from : int }
  | W_nack of { iid : iid; round : int; from : int }
  | W_decide of { iid : iid; value : Payload.t }
  | W_wakeup of { iid : iid }
      (* a proposer announces the instance so every process joins it:
         CT needs all (correct) processes to run the consensus task,
         even those with nothing to propose *)

let () =
  Payload.register_printer (function
    | W_estimate { iid; round; from; _ } ->
      Some (Printf.sprintf "ct.estimate %s r%d p%d" (pp_iid iid) round from)
    | W_propose { iid; round; _ } -> Some (Printf.sprintf "ct.proposal %s r%d" (pp_iid iid) round)
    | W_ack { iid; round; from } -> Some (Printf.sprintf "ct.ack %s r%d p%d" (pp_iid iid) round from)
    | W_nack { iid; round; from } ->
      Some (Printf.sprintf "ct.nack %s r%d p%d" (pp_iid iid) round from)
    | W_decide { iid; _ } -> Some (Printf.sprintf "ct.decision %s" (pp_iid iid))
    | W_wakeup { iid } -> Some (Printf.sprintf "ct.wakeup %s" (pp_iid iid))
    | _ -> None)

let () =
  Payload.register_codec ~tag:"consensus.ct"
    ~encode:(function
      | W_estimate { iid; round; from; value; ts; weight } ->
        Some
          (fun w ->
            Wire.W.u8 w 0;
            write_iid w iid;
            Wire.W.int w round;
            Wire.W.int w from;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w ts;
            Wire.W.int w weight)
      | W_propose { iid; round; value; weight } ->
        Some
          (fun w ->
            Wire.W.u8 w 1;
            write_iid w iid;
            Wire.W.int w round;
            Wire.W.str w (Payload.encode_exn value);
            Wire.W.int w weight)
      | W_ack { iid; round; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 2;
            write_iid w iid;
            Wire.W.int w round;
            Wire.W.int w from)
      | W_nack { iid; round; from } ->
        Some
          (fun w ->
            Wire.W.u8 w 3;
            write_iid w iid;
            Wire.W.int w round;
            Wire.W.int w from)
      | W_decide { iid; value } ->
        Some
          (fun w ->
            Wire.W.u8 w 4;
            write_iid w iid;
            Wire.W.str w (Payload.encode_exn value))
      | W_wakeup { iid } ->
        Some
          (fun w ->
            Wire.W.u8 w 5;
            write_iid w iid)
      | _ -> None)
    ~decode:(fun r ->
      match Wire.R.u8 r with
      | 0 ->
        let iid = read_iid r in
        let round = Wire.R.int r in
        let from = Wire.R.int r in
        let value = Payload.decode (Wire.R.str r) in
        let ts = Wire.R.int r in
        let weight = Wire.R.int r in
        W_estimate { iid; round; from; value; ts; weight }
      | 1 ->
        let iid = read_iid r in
        let round = Wire.R.int r in
        let value = Payload.decode (Wire.R.str r) in
        let weight = Wire.R.int r in
        W_propose { iid; round; value; weight }
      | 2 ->
        let iid = read_iid r in
        let round = Wire.R.int r in
        let from = Wire.R.int r in
        W_ack { iid; round; from }
      | 3 ->
        let iid = read_iid r in
        let round = Wire.R.int r in
        let from = Wire.R.int r in
        W_nack { iid; round; from }
      | 4 ->
        let iid = read_iid r in
        let value = Payload.decode (Wire.R.str r) in
        W_decide { iid; value }
      | 5 -> W_wakeup { iid = read_iid r }
      | c -> raise (Wire.Error (Printf.sprintf "consensus.ct: bad case %d" c)))

let protocol_name = "consensus.ct"

let round_pacing_ms = 10.0

let k_decided = "consensus.decided"

let decided_count stack = Stack.get_env stack k_decided ~default:0

(* Control messages are small; estimates/proposals carry the value, so
   their size is the value's weight-declared size plus a header. The
   weight is also (ab)used as a rough payload size for the bandwidth
   term: callers pass the batch byte size as weight. *)
let header_size = 64

type coord_round = {
  mutable estimates : (int * Payload.t * int * int) list;
      (* from, value, ts, weight *)
  mutable proposal : (Payload.t * int) option;  (* value proposed this round *)
  mutable acks : int list;
  mutable decided_sent : bool;
}

type inst = {
  iid : iid;
  mutable round : int;
  mutable estimate : Payload.t;
  mutable ts : int;
  mutable weight : int;
  mutable awaiting_propose : bool;
  mutable decided : bool;
  mutable entered : bool;  (* has the participant entered round 0 yet *)
  pending_proposals : (int, Payload.t * int) Hashtbl.t;  (* round -> value, weight *)
  coord : (int, coord_round) Hashtbl.t;  (* round -> coordinator state *)
}

let wakeup_resend_ms = 200.0

let install ?(service = Service.consensus) ~n stack =
  let me = Stack.node stack in
  let majority = (n / 2) + 1 in
  Stack.add_module stack ~name:protocol_name ~provides:[ service ]
    ~requires:[ Service.rp2p; Service.fd ]
    (fun stack _self ->
      let insts : (iid, inst) Hashtbl.t = Hashtbl.create 64 in
      (* Rotating coordinator, staggered by instance number so that
         concurrent instances do not all funnel their round 0 through
         process 0 (whose interface would otherwise bottleneck the whole
         sequence of instances). *)
      let coordinator iid r = (iid.k + r) mod n in
      let suspected = Array.make n false in
      let send ~dst ~size payload =
        Stack.call stack Service.rp2p (Rp2p.Send { dst; size; payload })
      in
      let send_all ~size payload =
        for dst = 0 to n - 1 do
          if dst <> me then send ~dst ~size payload
        done
      in
      let get_inst iid =
        match Hashtbl.find_opt insts iid with
        | Some i -> i
        | None ->
          let i =
            {
              iid;
              round = 0;
              estimate = No_value;
              ts = 0;
              weight = -1;
              awaiting_propose = false;
              decided = false;
              entered = false;
              pending_proposals = Hashtbl.create 4;
              coord = Hashtbl.create 4;
            }
          in
          Hashtbl.replace insts iid i;
          i
      in
      let coord_round inst r =
        match Hashtbl.find_opt inst.coord r with
        | Some c -> c
        | None ->
          let c = { estimates = []; proposal = None; acks = []; decided_sent = false } in
          Hashtbl.replace inst.coord r c;
          c
      in
      let decide inst value =
        if not inst.decided then begin
          inst.decided <- true;
          inst.estimate <- value;
          Stack.set_env stack k_decided (Stack.get_env stack k_decided ~default:0 + 1);
          (* Reliable dissemination: relay on first receipt. *)
          send_all ~size:(header_size + max inst.weight 0)
            (W_decide { iid = inst.iid; value });
          Stack.indicate stack service (Decide { iid = inst.iid; value })
        end
      in
      let rec enter_round inst r =
        if not inst.decided then begin
          inst.round <- r;
          inst.entered <- true;
          let c = coordinator inst.iid r in
          let est =
            W_estimate
              { iid = inst.iid; round = r; from = me; value = inst.estimate; ts = inst.ts;
                weight = inst.weight }
          in
          send ~dst:c ~size:(header_size + max inst.weight 0) est;
          match Hashtbl.find_opt inst.pending_proposals r with
          | Some (v, w) ->
            Hashtbl.remove inst.pending_proposals r;
            accept_proposal inst r v w
          | None ->
            if suspected.(c) then nack_and_advance inst
            else inst.awaiting_propose <- true
        end

      and accept_proposal inst r v w =
        inst.estimate <- v;
        inst.ts <- r;
        inst.weight <- w;
        inst.awaiting_propose <- false;
        send ~dst:(coordinator inst.iid r) ~size:header_size
          (W_ack { iid = inst.iid; round = r; from = me });
        enter_round inst (r + 1)

      and nack_and_advance inst =
        let r = inst.round in
        inst.awaiting_propose <- false;
        send ~dst:(coordinator inst.iid r) ~size:header_size
          (W_nack { iid = inst.iid; round = r; from = me });
        (* Pace suspicion-driven retries: advancing immediately would
           spin thousands of rounds per second while the failure
           detector output is wrong, and the resulting estimate storm
           (full values every round) congests the network enough to
           keep delaying the heartbeats that would fix the suspicion —
           a positive feedback loop. A small delay bounds the retry
           traffic; the happy path (proposal received, ack) still
           advances immediately. *)
        ignore
          (Stack.after stack ~delay:round_pacing_ms (fun () ->
               if (not inst.decided) && inst.round = r then enter_round inst (r + 1))
            : Dpu_runtime.Clock.timer)
      in
      let on_estimate iid round from value ts weight =
        let inst = get_inst iid in
        if inst.decided then
          (* Late participant: short-circuit it straight to the decision. *)
          send ~dst:from ~size:(header_size + max inst.weight 0)
            (W_decide { iid; value = inst.estimate })
        else if coordinator iid round = me then begin
          let cr = coord_round inst round in
          if Option.is_none cr.proposal then begin
            (* One estimate per participant: a later message from the
               same sender replaces the earlier one (participants may
               refine a No_value initial estimate, see below). *)
            cr.estimates <-
              (from, value, ts, weight)
              :: List.filter (fun (f, _, _, _) -> f <> from) cr.estimates;
            if List.length cr.estimates >= majority then begin
              (* Highest timestamp wins (CT safety); ties prefer heavier
                 (non-empty) estimates, then lower process id. *)
              let best (f1, v1, t1, w1) (f2, v2, t2, w2) =
                if t1 > t2 then (f1, v1, t1, w1)
                else if t2 > t1 then (f2, v2, t2, w2)
                else if w1 > w2 then (f1, v1, t1, w1)
                else if w2 > w1 then (f2, v2, t2, w2)
                else if f1 <= f2 then (f1, v1, t1, w1)
                else (f2, v2, t2, w2)
              in
              match cr.estimates with
              | [] -> ()
              | e0 :: rest ->
                let _, v, _, w = List.fold_left best e0 rest in
                cr.proposal <- Some (v, w);
                let prop = W_propose { iid; round; value = v; weight = w } in
                send_all ~size:(header_size + max w 0) prop;
                (* The coordinator is also a participant: handle its own
                   proposal locally without a network round-trip. *)
                if inst.round = round && inst.awaiting_propose then
                  accept_proposal inst round v w
                else if inst.round < round || not inst.entered then
                  Hashtbl.replace inst.pending_proposals round (v, w)
            end
          end
        end
      in
      let on_proposal iid round value weight =
        let inst = get_inst iid in
        if not inst.decided then begin
          if round = inst.round && inst.awaiting_propose then
            accept_proposal inst round value weight
          else if round > inst.round || not inst.entered then
            Hashtbl.replace inst.pending_proposals round (value, weight)
          (* else: stale round, we already replied to it *)
        end
      in
      let on_ack iid round from =
        let inst = get_inst iid in
        if (not inst.decided) && coordinator iid round = me then begin
          let cr = coord_round inst round in
          if (not cr.decided_sent) && not (List.mem from cr.acks) then begin
            cr.acks <- from :: cr.acks;
            match cr.proposal with
            | Some (v, w) when List.length cr.acks >= majority ->
              cr.decided_sent <- true;
              inst.weight <- w;
              decide inst v
            | Some _ | None -> ()
          end
        end
      in
      let on_decide iid value =
        let inst = get_inst iid in
        if not inst.decided then begin
          inst.estimate <- value;
          decide inst value
        end
      in
      let on_suspect p =
        suspected.(p) <- true;
        (* dpu-lint: allow hashtbl-iter — folded instances are sorted by iid before use *)
        Hashtbl.fold (fun _ inst acc -> inst :: acc) insts []
        |> List.sort (fun a b -> iid_compare a.iid b.iid)
        |> List.iter (fun inst ->
               if
                 (not inst.decided) && inst.awaiting_propose
                 && coordinator inst.iid inst.round = p
               then
                 nack_and_advance inst)
      in
      let on_wakeup iid =
        let inst = get_inst iid in
        if (not inst.decided) && not inst.entered then enter_round inst 0
      in
      let on_propose_call iid value weight =
        let inst = get_inst iid in
        if inst.decided then
          (* The caller may have missed the indication (e.g. it was just
             created); repeat it. *)
          Stack.indicate stack service (Decide { iid; value = inst.estimate })
        else begin
          let refined = inst.weight < 0 && inst.ts = 0 in
          if refined then begin
            inst.estimate <- value;
            inst.weight <- weight
          end;
          if not inst.entered then begin
            (* Pull every other process into the instance; they enter
               round 0 with a No_value estimate. Resent periodically
               until decided, so a participant whose module instance is
               created late (e.g. by a dynamic replacement of the layer
               above or of consensus itself) still joins. *)
            let rec announce () =
              if not inst.decided then begin
                send_all ~size:header_size (W_wakeup { iid });
                ignore
                  (Stack.after stack ~delay:wakeup_resend_ms announce
                    : Dpu_runtime.Clock.timer)
              end
            in
            announce ();
            enter_round inst 0
          end
          else if refined && inst.awaiting_propose then
            (* This process joined the instance (via a wakeup) before
               its upper layer had a value, and its No_value estimate is
               already on the wire. Any initial value is valid while
               ts = 0, so refine it: resend, and the coordinator
               replaces the previous entry. Without this, decided
               batches degenerate to whatever the fastest proposer had,
               starving batching. *)
            send ~dst:(coordinator inst.iid inst.round)
              ~size:(header_size + max inst.weight 0)
              (W_estimate
                 { iid = inst.iid; round = inst.round; from = me; value = inst.estimate;
                   ts = inst.ts; weight = inst.weight })
        end
      in
      {
        Stack.default_handlers with
        handle_call =
          (fun _svc p ->
            match p with
            | Propose { iid; value; weight } -> on_propose_call iid value weight
            | _ -> ());
        handle_indication =
          (fun svc p ->
            if Service.equal svc Service.rp2p then
              match p with
              | Rp2p.Recv { src = _; payload } -> (
                match payload with
                | W_estimate { iid; round; from; value; ts; weight } ->
                  on_estimate iid round from value ts weight
                | W_propose { iid; round; value; weight } -> on_proposal iid round value weight
                | W_ack { iid; round; from } -> on_ack iid round from
                | W_nack { iid = _; round = _; from = _ } ->
                  (* Nacks carry no information the coordinator acts on:
                     it simply never reaches a majority of acks. *)
                  ()
                | W_decide { iid; value } -> on_decide iid value
                | W_wakeup { iid } -> on_wakeup iid
                | _ -> ())
              | _ -> ()
            else if Service.equal svc Service.fd then
              match p with
              | Fd.Suspect q -> on_suspect q
              | Fd.Restore q -> suspected.(q) <- false
              | _ -> ());
      })

let spec ~service =
  Spec.make ~service:(Service.name service)
    ~roles:[ "coordinator"; "participant" ]
    ~kinds:
      [
        Spec.kind ~payload:true ~role:"participant" "consensus.estimate";
        Spec.kind ~role:"participant" "consensus.ack";
        Spec.kind ~payload:true ~role:"coordinator" "consensus.decide";
      ]
    ~transitions:
      [
        Spec.t "idle" Spec.Accept "proposing";
        Spec.t "proposing" (Spec.Emit "consensus.estimate") "estimating";
        Spec.t "estimating" (Spec.Recv "consensus.estimate") "coordinated";
        Spec.t "coordinated" (Spec.Emit "consensus.decide") "deciding";
        Spec.t "deciding" (Spec.Recv "consensus.decide") "decided";
        Spec.t "decided" Spec.Deliver "idle";
      ]
    ~obligations:[ Spec.Validity; Spec.Exactly_once ]
      (* instances are keyed by {epoch; k}: rounds of distinct
         generations can never interfere on the wire *)
    ~capabilities:[ Spec.Slot_scoped_rounds; Spec.Epoch_tagged_wire ] ()

let register ?(service = Service.consensus) ?name system =
  let n = System.n system in
  let name = match name with Some name -> name | None -> protocol_name in
  Registry.register (System.registry system) ~name ~provides:[ service ]
    ~requires:[ Service.rp2p; Service.fd ] ~spec:(spec ~service)
    (fun stack -> install ~service ~n stack)
