(** The atomic broadcast *service* interface (paper §5.1).

    Every ABcast protocol implementation (consensus-based, sequencer,
    token ring) provides [Service.abcast] with these payloads, so the
    replacement module depends only on this specification — the key
    structural claim of the paper (§4.1): DPU needs the specification
    of the replaced protocol, never its algorithm.

    Properties each provider must satisfy (checked in [Dpu_props]):
    validity, uniform agreement, uniform integrity, uniform total
    order. *)

open Dpu_kernel

type Payload.t +=
  | Broadcast of { size : int; payload : Payload.t }
      (** call: ABcast [payload] to the group *)
  | Deliver of { origin : int; payload : Payload.t }
      (** indication: Adeliver — same sequence of payloads at every
          stack *)

val epoch_key : string
(** Stack-env key holding the protocol generation number under which a
    newly created ABcast module must operate (written by the
    replacement module before [create_module], read by factories).
    Generations keep wire traffic and consensus instances of old and
    new protocol versions disjoint. *)

val current_epoch : Stack.t -> int
(** The generation in force in [stack] (0 before any replacement). *)

(** {1 Wire-epoch recognition}

    A node that switches generations late (it was partitioned, or its
    copy of the change message was delayed) receives the new
    generation's wire traffic before the module that understands it
    exists. The transport has already acknowledged those datagrams, so
    without intervention they are lost permanently — the late node can
    deadlock waiting for a sequence prefix nobody will resend. Each
    ABcast implementation registers an extractor recognising its own
    wire payloads so that [Epoch_buffer] can stash such traffic and
    replay it once the generation is installed. *)

val register_wire_epoch : (Payload.t -> int option) -> unit
(** Register an extractor. It receives the full indication payload
    (e.g. [Rp2p.Recv {...}]) and returns [Some epoch] iff it
    recognises one of its protocol's generation-tagged wire messages. *)

val wire_epoch : Payload.t -> int option
(** Apply registered extractors; first match wins. *)
