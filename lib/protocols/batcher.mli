(** Batch aggregation for the ordering hot path.

    The classic production atomic-broadcast trick: amortise one
    ordering round (a sequencer broadcast, a consensus instance) over
    many application payloads. A batch flushes when it reaches
    [max_batch] messages or when the oldest pending message has waited
    [max_delay_ms] — whichever comes first — so batching trades a
    bounded amount of latency for throughput.

    Epoch-boundary rule (see DESIGN.md §5l): a batch never spans
    protocol generations. Users flush eagerly when they observe their
    epoch superseded ({!Abcast_iface.current_epoch} moved on), and
    every wire batch is tagged with the single epoch it was cut from,
    so receivers accept or drop it atomically and Algorithm 1's
    reissue logic never sees half a batch.

    Timers run through {!Stack.after}, so batching behaves identically
    on the simulated and live backends and stays deterministic in sim
    runs. *)

open Dpu_kernel

type config = { max_batch : int; max_delay_ms : float }

val default : config
(** [{ max_batch = 16; max_delay_ms = 2.0 }] *)

(** The bare flush trigger — count/deadline logic without owning the
    pending set, for protocols whose pending messages already live in
    their own structures (e.g. {!Abcast_ct}'s unordered table). *)
module Trigger : sig
  type t

  val create : Stack.t -> config -> fire:(unit -> unit) -> t
  (** Raises [Invalid_argument] on a non-positive [max_batch] or a
      negative [max_delay_ms]. *)

  val notify : t -> pending:int -> unit
  (** Report the current pending count: at or above [max_batch] fires
      immediately; a positive count arms the delay timer (if not
      already armed); zero cancels it. *)

  val force : t -> unit
  (** Cancel any armed timer and fire now — the epoch-boundary flush. *)
end

(** Accumulating batcher: owns the pending list, preserves insertion
    order. *)
type 'a t

val create : Stack.t -> config -> flush:('a list -> unit) -> 'a t
(** [flush] receives batches in insertion order and is never called
    with an empty list. Raises like {!Trigger.create} on a bad
    config. *)

val add : 'a t -> 'a -> unit

val flush : 'a t -> unit
(** Flush whatever is pending now (no-op when empty). *)

val pending : 'a t -> int
