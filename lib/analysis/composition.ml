open Dpu_kernel
module Report = Dpu_props.Report
module SB = Dpu_core.Stack_builder
module RC = Dpu_core.Repl_consensus

type decl = {
  d_name : string;
  d_provides : Service.t list;
  d_requires : Service.t list;
  d_spec : Spec.t option;
}

type root =
  | By_name of string
  | By_service of Service.t

type plan = {
  prebound : decl list;
  roots : root list;
  passive : decl list;
  named : string list;
  updates : (string * string) list;
  consensus_updates : string list;
  layer : string option;
}

let plan_of_profile ?(updates = []) ?(consensus_updates = []) (profile : SB.profile) =
  let prebound =
    match profile.consensus_layer with
    | Some _ ->
      [
        {
          d_name = RC.protocol_name;
          d_provides = [ Service.consensus ];
          (* Generation 0 comes up on slot 0 at start; later slots are
             populated by the layer itself as generations advance. *)
          d_requires = [ Service.rp2p; RC.impl_service 0 ];
          d_spec = Some RC.spec;
        };
      ]
    | None -> []
  in
  let named =
    match profile.consensus_layer with
    | Some initial -> [ RC.impl_name initial ~slot:0 ]
    | None -> []
  in
  let roots =
    [ By_name profile.initial_abcast ]
    @ (match profile.layer with Some l -> [ By_name l ] | None -> [])
    @ (if profile.with_gm then [ By_service Service.gm ] else [])
  in
  let monitor_mode =
    if Option.is_some profile.layer then Dpu_core.Monitor.Layered
    else Dpu_core.Monitor.Direct
  in
  let passive =
    (if Option.is_some profile.layer && profile.epoch_buffer then
       [
         {
           d_name = Dpu_protocols.Epoch_buffer.protocol_name;
           d_provides = [];
           d_requires = Dpu_protocols.Epoch_buffer.requires;
           d_spec = Some Dpu_protocols.Epoch_buffer.spec;
         };
       ]
     else [])
    @ [
        {
          d_name = Dpu_core.Monitor.module_name;
          d_provides = [];
          d_requires = Dpu_core.Monitor.requires monitor_mode;
          d_spec = None;
        };
      ]
  in
  {
    prebound;
    roots;
    passive;
    named;
    updates = List.map (fun target -> (profile.initial_abcast, target)) updates;
    consensus_updates;
    layer = profile.layer;
  }

(* ------------------------------------------------------------------ *)
(* The static model                                                   *)
(* ------------------------------------------------------------------ *)

let decl_of_registry registry name =
  match Registry.provides_of registry ~name with
  | None -> None
  | Some provides ->
    let requires =
      Option.value ~default:[] (Registry.requires_of registry ~name)
    in
    Some
      {
        d_name = name;
        d_provides = provides;
        d_requires = requires;
        d_spec = Registry.spec_of registry ~name;
      }

(* Prebound modules shadow the registry: they are installed by hand and
   already hold their bindings when resolution starts. *)
let lookup_decl registry plan name =
  match List.find_opt (fun d -> String.equal d.d_name name) plan.prebound with
  | Some d -> Some d
  | None -> decl_of_registry registry name

let path_str path = String.concat " -> " (List.rev path)

(* A static mirror of [Registry.instantiate]/[ensure_bound]: bind the
   declared provides before recursing into the declared requires, so
   honest cycles terminate here exactly as they do dynamically. The
   mirror accumulates missing providers and unknown protocols instead
   of raising. *)
type resolution = {
  mutable bindings : string Service.Map.t;  (* service -> module name *)
  mutable instantiated : string list;  (* reversed instantiation order *)
  mutable res_checked : int;
  mutable unknown : string list;  (* violation strings *)
  mutable missing : string list;
}

let rec res_instantiate registry plan res ~path name =
  match lookup_decl registry plan name with
  | None ->
    res.unknown <-
      Printf.sprintf "unknown protocol %S (via %s)" name (path_str path)
      :: res.unknown
  | Some d ->
    if not (List.mem name res.instantiated) then
      res.instantiated <- name :: res.instantiated;
    List.iter
      (fun svc ->
        if not (Service.Map.mem svc res.bindings) then
          res.bindings <- Service.Map.add svc name res.bindings)
      d.d_provides;
    List.iter
      (fun svc -> res_ensure registry plan res ~path:(name :: path) svc)
      d.d_requires

and res_ensure registry plan res ~path svc =
  res.res_checked <- res.res_checked + 1;
  if not (Service.Map.mem svc res.bindings) then
    match Registry.provider_of registry svc with
    | None ->
      res.missing <-
        Printf.sprintf "no provider for service %s (required via %s)"
          (Service.name svc) (path_str path)
        :: res.missing
    | Some name -> res_instantiate registry plan res ~path name

let resolve_plan registry plan =
  let res =
    {
      bindings = Service.Map.empty;
      instantiated = [];
      res_checked = 0;
      unknown = [];
      missing = [];
    }
  in
  (* Prebound modules hold their bindings before anything resolves. *)
  List.iter
    (fun d ->
      res.bindings <-
        List.fold_left
          (fun b svc -> Service.Map.add svc d.d_name b)
          res.bindings d.d_provides)
    plan.prebound;
  List.iter
    (fun d ->
      res.instantiated <- d.d_name :: res.instantiated;
      List.iter
        (fun svc -> res_ensure registry plan res ~path:[ d.d_name ] svc)
        d.d_requires)
    plan.prebound;
  List.iter
    (function
      | By_name name -> res_instantiate registry plan res ~path:[ "<build>" ] name
      | By_service svc -> res_ensure registry plan res ~path:[ "<build>" ] svc)
    plan.roots;
  List.iter
    (fun name ->
      if not (List.mem name res.instantiated) then
        res_instantiate registry plan res ~path:[ "<named>" ] name)
    plan.named;
  res

(* ------------------------------------------------------------------ *)
(* Check 1: static strong stack-well-formedness                       *)
(* ------------------------------------------------------------------ *)

let check_well_formedness registry plan =
  let res = resolve_plan registry plan in
  let violations = List.rev_append res.unknown (List.rev res.missing) in
  ( Report.make ~property:"static strong stack-well-formedness"
      ~checked:res.res_checked (List.sort String.compare violations),
    res )

(* ------------------------------------------------------------------ *)
(* Check 2: acyclic provider chains                                   *)
(* ------------------------------------------------------------------ *)

(* The cycle check walks the declared requirement graph from scratch:
   an edge goes from a module to the provider each required service
   would resolve to, respecting only the plan's explicit bindings
   (prebound modules and roots), not bindings a chain creates while it
   is being resolved. A chain that loops back therefore shows up even
   when [Registry.instantiate] would terminate on it. *)
let compare_cycles a b = List.compare String.compare a b

let check_acyclic registry plan =
  let planned_binding =
    let add map d =
      List.fold_left
        (fun m svc ->
          if Service.Map.mem svc m then m else Service.Map.add svc d m)
        map d.d_provides
    in
    let from_prebound = List.fold_left add Service.Map.empty plan.prebound in
    List.fold_left
      (fun map root ->
        match root with
        | By_name name -> (
          match lookup_decl registry plan name with
          | Some d -> add map d
          | None -> map)
        | By_service _ -> map)
      from_prebound plan.roots
  in
  let resolve svc =
    match Service.Map.find_opt svc planned_binding with
    | Some d -> Some d.d_name
    | None -> Registry.provider_of registry svc
  in
  let cycles = ref [] in
  let edges_checked = ref 0 in
  let finished = Hashtbl.create 16 in
  let rec visit stack name =
    if List.mem name stack then begin
      let rec upto acc = function
        | [] -> acc
        | n :: _ when String.equal n name -> acc
        | n :: rest -> upto (n :: acc) rest
      in
      let cycle = Registry.canonical_cycle (name :: upto [] stack) in
      if not (List.mem cycle !cycles) then cycles := cycle :: !cycles
    end
    else if not (Hashtbl.mem finished name) then begin
      Hashtbl.replace finished name ();
      match lookup_decl registry plan name with
      | None -> ()
      | Some d ->
        List.iter
          (fun svc ->
            incr edges_checked;
            match resolve svc with
            | Some provider -> visit (name :: stack) provider
            | None -> ())
          d.d_requires
    end
  in
  List.iter (fun d -> visit [] d.d_name) plan.prebound;
  List.iter
    (function
      | By_name name -> visit [] name
      | By_service svc -> (
        match resolve svc with Some name -> visit [] name | None -> ()))
    plan.roots;
  List.iter (fun name -> visit [] name) plan.named;
  List.iter (fun (_, target) -> visit [] target) plan.updates;
  (* [Registry.cycle_string] appends the closing edge ("a -> b -> a"),
     matching the [Cyclic_requires] exception printer: the finding
     shows the full cycle, not just the path to its last node. *)
  let violations =
    List.map
      (fun cycle -> Printf.sprintf "provider cycle: %s" (Registry.cycle_string cycle))
      (List.sort compare_cycles !cycles)
  in
  Report.make ~property:"acyclic provider chains" ~checked:!edges_checked violations

(* ------------------------------------------------------------------ *)
(* Check 3: unique service binding                                    *)
(* ------------------------------------------------------------------ *)

let check_unique_binding registry plan =
  let planned =
    plan.prebound
    @ List.filter_map
        (function
          | By_name name -> lookup_decl registry plan name
          | By_service _ -> None)
        plan.roots
  in
  let claims : (Service.t * string) list =
    List.concat_map (fun d -> List.map (fun svc -> (svc, d.d_name)) d.d_provides) planned
  in
  let services =
    List.sort_uniq Service.compare (List.map fst claims)
  in
  let violations =
    List.filter_map
      (fun svc ->
        let holders =
          List.filter_map
            (fun (s, name) -> if Service.equal s svc then Some name else None)
            claims
        in
        match holders with
        | [] | [ _ ] -> None
        | _ ->
          Some
            (Printf.sprintf "service %s claimed by %d planned modules: %s"
               (Service.name svc) (List.length holders)
               (String.concat ", " holders)))
      services
  in
  Report.make ~property:"unique service binding" ~checked:(List.length services)
    violations

(* ------------------------------------------------------------------ *)
(* Check 4: update-plan safety                                        *)
(* ------------------------------------------------------------------ *)

let check_update_safety registry plan (base : resolution) =
  let checked = ref 0 in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun (old_name, new_name) ->
      incr checked;
      match lookup_decl registry plan old_name with
      | None ->
        violate "changeABcast(%s): old protocol %S is not registered" new_name
          old_name
      | Some old_d -> (
        (* The indirection must exist and intercept every service the
           old protocol serves, or callers keep a direct dependency on
           the module being swapped out (§4.2). *)
        (match plan.layer with
        | None ->
          violate
            "changeABcast(%s): profile has no replacement layer, nothing \
             intercepts callers of %s"
            new_name old_name
        | Some layer_name -> (
          match lookup_decl registry plan layer_name with
          | None -> violate "replacement layer %S is not registered" layer_name
          | Some layer_d ->
            List.iter
              (fun svc ->
                if not (List.exists (Service.equal svc) layer_d.d_requires) then
                  violate
                    "replacement layer %s does not intercept service %s provided \
                     by %s"
                    layer_name (Service.name svc) old_name)
              old_d.d_provides));
        (* No planned module other than the layer (and the old protocol's
           own subtree) may call the replaced services directly. *)
        let replaced = old_d.d_provides in
        List.iter
          (fun name ->
            if
              (not (String.equal name old_name))
              && not (match plan.layer with Some l -> String.equal l name | None -> false)
            then
              match lookup_decl registry plan name with
              | None -> ()
              | Some d ->
                List.iter
                  (fun svc ->
                    if List.exists (Service.equal svc) replaced then
                      violate
                        "module %s requires service %s directly; the replacement \
                         indirection cannot intercept its calls across a swap to %s"
                        name (Service.name svc) new_name)
                  d.d_requires)
          (List.rev base.instantiated);
        match lookup_decl registry plan new_name with
        | None ->
          violate "changeABcast(%s): target protocol is not registered" new_name
        | Some new_d ->
          (* Coverage: every service callers could reach through the old
             protocol must still be served after the swap (§5's
             protocol-operationability across the replacement). *)
          List.iter
            (fun svc ->
              if not (List.exists (Service.equal svc) new_d.d_provides) then
                violate
                  "changeABcast(%s): new protocol drops service %s provided by %s"
                  new_name (Service.name svc) old_name)
            old_d.d_provides;
          (* The target's requirements must resolve in the post-swap
             stack: the old protocol's bindings are gone, everything
             else survives. *)
          let res =
            {
              bindings =
                Service.Map.filter
                  (fun _ holder -> not (String.equal holder old_name))
                  base.bindings;
              instantiated = base.instantiated;
              res_checked = 0;
              unknown = [];
              missing = [];
            }
          in
          res_instantiate registry plan res ~path:[ "<update>" ] new_name;
          List.iter
            (fun v -> violate "after changeABcast(%s): %s" new_name v)
            (List.rev_append res.unknown (List.rev res.missing))))
    plan.updates;
  List.iter
    (fun target ->
      incr checked;
      if not (List.exists (fun d -> String.equal d.d_name RC.protocol_name) plan.prebound)
      then
        violate
          "changeConsensus(%s): profile has no consensus replacement layer" target
      else begin
        let missing_slots =
          List.filter
            (fun slot -> not (Registry.mem registry ~name:(RC.impl_name target ~slot)))
            (List.init RC.slots (fun i -> i))
        in
        (match missing_slots with
        | [] -> ()
        | slots ->
          violate
            "changeConsensus(%s): implementation not registered at slot(s) %s"
            target
            (String.concat ", "
               (List.map (fun s -> RC.impl_name target ~slot:s) slots)));
        if missing_slots = [] then begin
          let res =
            {
              bindings = base.bindings;
              instantiated = base.instantiated;
              res_checked = 0;
              unknown = [];
              missing = [];
            }
          in
          res_instantiate registry plan res ~path:[ "<consensus-update>" ]
            (RC.impl_name target ~slot:1);
          List.iter
            (fun v -> violate "after changeConsensus(%s): %s" target v)
            (List.rev_append res.unknown (List.rev res.missing))
        end
      end)
    plan.consensus_updates;
  Report.make ~property:"update-plan safety" ~checked:!checked
    (List.sort String.compare !violations)

(* ------------------------------------------------------------------ *)
(* Check 5: behavioural update safety                                 *)
(* ------------------------------------------------------------------ *)

(* Can the swap strand (or wrongly re-issue) in-flight work? The heavy
   lifting — 1-unfolding of the old spec, ♢-combination with the new —
   lives in [Behaviour]; this check resolves the specs from the plan
   and the registry and turns missing/opaque ones into violations of
   their own: a pair the checker cannot reason about is not safe. *)
let check_behaviour registry plan =
  let checked = ref 0 in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let spec_of name =
    match List.find_opt (fun d -> String.equal d.d_name name) plan.prebound with
    | Some d -> d.d_spec
    | None -> Registry.spec_of registry ~name
  in
  let usable what name =
    incr checked;
    match spec_of name with
    | None ->
      violate "%s %s declares no behavioural spec; the safe-update check \
               cannot prove it leaves nothing in flight" what name;
      None
    | Some spec when Spec.is_opaque spec ->
      violate "%s %s declares an opaque behavioural spec (%s); the \
               safe-update check cannot prove it leaves nothing in flight"
        what name
        (Option.value ~default:"no reason" spec.Spec.s_opaque);
      None
    | Some spec -> Some spec
  in
  let passives =
    List.filter_map
      (fun d -> Option.map (fun s -> (d.d_name, s)) d.d_spec)
      plan.passive
  in
  (match (plan.updates, plan.layer) with
  | [], _ | _, None ->
    (* structural update safety already rejects layerless swaps *)
    ()
  | _ :: _, Some layer_name -> (
    match usable "replacement layer" layer_name with
    | None -> ()
    | Some layer_spec ->
      List.iter
        (fun (old_name, new_name) ->
          match (usable "old protocol" old_name, usable "new protocol" new_name)
          with
          | Some old_spec, Some new_spec ->
            if not (String.equal old_spec.Spec.s_service new_spec.Spec.s_service)
            then
              violate
                "changeABcast(%s): behavioural specs disagree on the service \
                 (%s speaks %s, %s speaks %s)"
                new_name old_name old_spec.Spec.s_service new_name
                new_spec.Spec.s_service
            else begin
              let examined, hazards =
                Behaviour.check_pair ~old_name ~old_spec ~new_name ~new_spec
                  ~layer:(layer_name, layer_spec) ~passives
              in
              checked := !checked + examined;
              List.iter
                (fun h ->
                  violate "%s" (Behaviour.hazard_message ~old_name ~new_name h))
                hazards
            end
          | _ -> ())
        plan.updates));
  List.iter
    (fun target ->
      match usable "consensus implementation" (RC.impl_name target ~slot:0) with
      | None -> ()
      | Some spec ->
        incr checked;
        if not (Spec.has spec Spec.Slot_scoped_rounds) then
          violate
            "changeConsensus(%s): implementation does not scope its rounds by \
             generation slot; in-flight instances of the old implementation \
             could decide against the new one's"
            target)
    plan.consensus_updates;
  Report.make ~property:"behavioural update safety" ~checked:!checked
    (List.rev !violations)

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let verify ~registry plan =
  let wf, base = check_well_formedness registry plan in
  [
    wf;
    check_acyclic registry plan;
    check_unique_binding registry plan;
    check_update_safety registry plan base;
    check_behaviour registry plan;
  ]

let verify_profile ~registry ?updates ?consensus_updates profile =
  verify ~registry (plan_of_profile ?updates ?consensus_updates profile)

let schema_v1 = "dpu.analysis/1"

let schema_v2 = "dpu.analysis/2"

let to_json reports =
  let module J = Dpu_obs.Json in
  J.Obj
    [
      ("schema", J.Str schema_v2);
      ("schema_version", J.Int 2);
      ("ok", J.Bool (Report.all_ok reports));
      ( "reports",
        J.List
          (List.map
             (fun (r : Report.t) ->
               J.Obj
                 [
                   ("property", J.Str r.property);
                   ("ok", J.Bool r.ok);
                   ("checked", J.Int r.checked);
                   ("violations", J.List (List.map (fun v -> J.Str v) r.violations));
                 ])
             reports) );
    ]

(* Read back both the current schema and the PR4-era [dpu.analysis/1]
   (same reports shape, no [schema_version] field, four properties). *)
let of_json json =
  let module J = Dpu_obs.Json in
  let ( let* ) r f = Result.bind r f in
  let field obj name accessor what =
    match Option.bind (J.member obj name) accessor with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed %S field" what)
  in
  let* schema = field json "schema" J.to_string_opt "schema" in
  let* () =
    if String.equal schema schema_v1 || String.equal schema schema_v2 then Ok ()
    else Error (Printf.sprintf "unsupported schema %S" schema)
  in
  let* reports = field json "reports" J.to_list_opt "reports" in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest ->
      let* property = field r "property" J.to_string_opt "report property" in
      let* checked = field r "checked" J.to_int_opt "report checked" in
      let* violations = field r "violations" J.to_list_opt "report violations" in
      let violations =
        List.filter_map J.to_string_opt violations
      in
      parse
        (Report.make ~property
           ~max_violations:(List.length violations + 1)
           ~checked violations
        :: acc)
        rest
  in
  parse [] reports
