(** Static composition verifier — §3's correctness properties decided
    on the configuration graph, before any simulation step.

    The dynamic checkers ({!Dpu_props.Stack_props}) replay a kernel
    trace after a run; a mis-composed stack or an unsafe replacement
    plan therefore surfaces minutes into a sweep. This pass extracts a
    static model of the configuration — the registry's declared
    [provides]/[requires] edges plus the build plan of
    {!Dpu_core.Stack_builder} — and decides, on the graph:

    - {e static strong stack-well-formedness}: every service any
      planned module (transitively) requires reaches a registered
      provider, mirroring [Registry.instantiate]'s resolution;
    - {e acyclic provider chains}: no requirement chain loops back to a
      protocol it is still resolving (reported in the same normal form
      as [Registry.Cyclic_requires]);
    - {e unique service binding}: no two explicitly planned modules
      claim the same service binding;
    - {e update-plan safety}: a planned [changeABcast]-style swap keeps
      protocol-operationability — the new protocol is registered, its
      provided services cover the old one's, its requirements resolve
      in the post-swap stack, and the replacement-layer indirection
      intercepts every caller of the replaced services (§4–§5);
    - {e behavioural update safety}: the swap cannot strand or wrongly
      re-issue in-flight work — {!Behaviour} unfolds the old protocol's
      declared {!Dpu_kernel.Spec} once at the switch point and checks
      that the combination with the new spec, under the layer's
      capabilities, discharges every obligation; undischarged shapes
      are reported with a counterexample trace.

    The verifier is deliberately conservative: a cyclic provider chain
    is rejected statically even though [Registry.instantiate] can build
    honest cycles (binding-before-recursion), because its termination
    then depends on factories binding exactly what they declare.

    Passive listener modules (monitor, epoch buffer) impose no static
    obligations: they only receive indications, which the kernel
    delivers regardless of bindings. *)

open Dpu_kernel

(** A module as the static model sees it. *)
type decl = {
  d_name : string;
  d_provides : Service.t list;
  d_requires : Service.t list;
  d_spec : Spec.t option;  (** declared behaviour, for check 5 *)
}

type root =
  | By_name of string  (** instantiate this registered protocol *)
  | By_service of Service.t  (** [Registry.ensure_bound] this service *)

(** A static build-and-update plan for one stack (all stacks are built
    identically, so one plan covers the system). *)
type plan = {
  prebound : decl list;
      (** modules installed and bound by hand before resolution runs
          (e.g. the consensus replacement layer); their requirements
          are resolved like a root's *)
  roots : root list;  (** instantiated in order, as [Stack_builder.build] does *)
  passive : decl list;  (** unbound listeners; no static obligations *)
  named : string list;
      (** protocol names that must be registered and resolvable even
          though no service lookup reaches them by name (e.g. the
          consensus layer's initial implementation, which the layer
          instantiates by name at start-up) *)
  updates : (string * string) list;
      (** planned [changeABcast] swaps as [(old, new)] pairs *)
  consensus_updates : string list;
      (** planned consensus-implementation swap targets *)
  layer : string option;  (** the [r-abcast] indirection, if any *)
}

val plan_of_profile :
  ?updates:string list ->
  ?consensus_updates:string list ->
  Dpu_core.Stack_builder.profile ->
  plan
(** The static plan of the stack {!Dpu_core.Stack_builder.build}
    assembles for [profile], with [updates] the [changeABcast] targets
    the scenario will request and [consensus_updates] the consensus
    swap targets. *)

val verify : registry:Registry.t -> plan -> Dpu_props.Report.t list
(** Run all five checks; one report per property, in the order listed
    above. [Dpu_props.Report.all_ok] on the result is the verdict. *)

val verify_profile :
  registry:Registry.t ->
  ?updates:string list ->
  ?consensus_updates:string list ->
  Dpu_core.Stack_builder.profile ->
  Dpu_props.Report.t list
(** [verify] of [plan_of_profile]. *)

val to_json : Dpu_props.Report.t list -> Dpu_obs.Json.t
(** Machine-readable findings ([dpu.analysis/2] schema): top-level
    [schema], integer [schema_version], [ok], plus per-property
    [ok]/[checked]/[violations]. *)

val of_json : Dpu_obs.Json.t -> (Dpu_props.Report.t list, string) result
(** Parse verdicts emitted by {!to_json} — either the current
    [dpu.analysis/2] schema or the PR4-era [dpu.analysis/1] (which had
    no [schema_version] field and no behavioural report); any other
    schema string is an error. *)
