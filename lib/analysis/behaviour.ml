(* Behavioural safe-update checker: 1-unfolding of the old spec,
   ♢-style combination with the new spec under the layer's
   capabilities. See behaviour.mli. *)

open Dpu_kernel

type pending =
  | P_deliver
  | P_wire of Spec.kind
  | P_batch of Spec.kind

type shape = {
  sh_state : string;
  sh_pending : pending list;
  sh_trace : string list;
}

let pending_key = function
  | P_deliver -> "deliver"
  | P_wire k -> "wire:" ^ k.Spec.k_name
  | P_batch k -> "batch:" ^ k.Spec.k_name

let pending_name = function
  | P_deliver -> "an accepted-but-undelivered payload"
  | P_wire k -> Printf.sprintf "an in-flight %s" k.Spec.k_name
  | P_batch k -> Printf.sprintf "a partially-flushed %s batch" k.Spec.k_name

(* ------------------------------------------------------------------ *)
(* 1-unfolding                                                        *)
(* ------------------------------------------------------------------ *)

let step_text spec (label : Spec.label) =
  let role k =
    match Spec.kind_named spec k with Some k -> k.Spec.k_role | None -> "peer"
  in
  match label with
  | Spec.Accept -> "the caller hands a payload to the protocol"
  | Spec.Emit k -> Printf.sprintf "the %s emits %s" (role k) k
  | Spec.Recv k -> Printf.sprintf "%s is received" k
  | Spec.Aggregate k -> Printf.sprintf "the payload is parked in the open %s batch" k
  | Spec.Flush k -> Printf.sprintf "the %s batch is flushed to the wire" k
  | Spec.Deliver -> "the payload is delivered"

let find_kind spec k =
  match Spec.kind_named spec k with
  | Some kind -> kind
  | None -> Spec.kind ~role:"peer" k

(* Remove the first pending unit [sel] matches; None if none does. *)
let take sel pending =
  let rec go acc = function
    | [] -> None
    | p :: rest when sel p -> Some (List.rev_append acc rest)
    | p :: rest -> go (p :: acc) rest
  in
  go [] pending

(* The effect of firing one label on the pending multiset; None when
   the label is not enabled (nothing in flight matches it). *)
let fire spec pending (label : Spec.label) =
  match label with
  | Spec.Accept -> Some (pending @ [ P_deliver ])
  | Spec.Emit k -> Some (pending @ [ P_wire (find_kind spec k) ])
  | Spec.Recv k ->
    take (function P_wire w -> String.equal w.Spec.k_name k | _ -> false) pending
  | Spec.Aggregate k -> Some (pending @ [ P_batch (find_kind spec k) ])
  | Spec.Flush k ->
    let is_batch = function
      | P_batch b -> String.equal b.Spec.k_name k
      | _ -> false
    in
    if not (List.exists is_batch pending) then None
    else
      Some (List.filter (fun p -> not (is_batch p)) pending @ [ P_wire (find_kind spec k) ])
  | Spec.Deliver ->
    take (function P_deliver -> true | _ -> false) pending

let shape_key state pending =
  state ^ "|" ^ String.concat "," (List.map pending_key pending)

let unfold1 (spec : Spec.t) =
  let shapes = ref [] in
  let seen = ref [] in
  let transitions = Array.of_list spec.Spec.s_transitions in
  let record state pending trace =
    let key = shape_key state pending in
    if pending <> [] && not (List.mem key !seen) then begin
      seen := key :: !seen;
      shapes :=
        { sh_state = state; sh_pending = pending; sh_trace = List.rev trace }
        :: !shapes
    end
  in
  let rec go state pending trace used =
    record state pending trace;
    Array.iteri
      (fun i (t : Spec.transition) ->
        if (not (List.mem i used)) && String.equal t.Spec.t_from state then
          match fire spec pending t.Spec.t_label with
          | Some pending' ->
            go t.Spec.t_to pending' (step_text spec t.Spec.t_label :: trace)
              (i :: used)
          | None -> ())
      transitions
  in
  go spec.Spec.s_init [] [] [];
  List.rev !shapes

(* ------------------------------------------------------------------ *)
(* Combination and discharge                                          *)
(* ------------------------------------------------------------------ *)

type hazard = {
  h_shape : string;
  h_fate : [ `Stranded | `Reissued ];
  h_obligation : Spec.obligation;
  h_trace : string list;
}

(* The service contract the caller keeps relying on across the swap;
   instance-local obligations (gap-free-gseq, epoch-flush) are about
   one instance's wire discipline, not the service. *)
let contract_obligations =
  [ Spec.Total_order; Spec.Exactly_once; Spec.Validity; Spec.Fifo_order;
    Spec.Causal_order ]

let check_pair ~old_name ~old_spec ~new_name ~new_spec ~layer ~passives =
  let layer_name, layer_spec = layer in
  let checked = ref 0 in
  let hazards = ref [] in
  let seen = ref [] in
  let hazard shape fate obligation trace =
    (* one hazard per (shape, obligation): the same undischarged unit
       reappears in many unfolding configurations *)
    let key = shape ^ "|" ^ Spec.obligation_name obligation in
    if not (List.mem key !seen) then begin
      seen := key :: !seen;
      hazards :=
        { h_shape = shape; h_fate = fate; h_obligation = obligation; h_trace = trace }
        :: !hazards
    end
  in
  let switch_step =
    Printf.sprintf
      "changeABcast(%s) is delivered: the %s instance is superseded" new_name
      old_name
  in
  let reissues =
    Spec.has layer_spec Spec.Reissue_undelivered
    && Spec.has layer_spec Spec.Generation_filter
  in
  let quiesces = Spec.has layer_spec Spec.Quiesce_before_switch in
  let old_tagged = Spec.has old_spec Spec.Epoch_tagged_wire in
  (* --- old side: every in-flight shape of the 1-unfolding ---------- *)
  List.iter
    (fun shape ->
      List.iter
        (fun p ->
          incr checked;
          let trace fail = shape.sh_trace @ [ switch_step ] @ fail in
          match p with
          | P_deliver ->
            if not (reissues || quiesces) then
              if Spec.has layer_spec Spec.Reissue_undelivered then
                hazard (pending_name p) `Reissued Spec.Exactly_once
                  (trace
                     [
                       Printf.sprintf
                         "%s re-issues the payload on %s, but filters no \
                          generations: the superseded instance may still \
                          deliver its copy (exactly-once broken)"
                         layer_name new_name;
                     ])
              else
                hazard (pending_name p) `Stranded Spec.Validity
                  (trace
                     [
                       Printf.sprintf
                         "no capability of %s re-issues or drains the pending \
                          payload: it is never delivered (validity broken)"
                         layer_name;
                     ])
          | P_wire k ->
            if old_tagged then
              (* the stale copy is identifiably old-generation: every
                 receiver's epoch filter drops it, and any payload it
                 carried re-enters via the layer's re-issue (checked
                 under P_deliver) *)
              ()
            else if Option.is_some (Spec.kind_named new_spec k.Spec.k_name) then
              hazard (pending_name p) `Reissued Spec.Total_order
                (trace
                   [
                     Printf.sprintf
                       "the stale %s carries no epoch tag and %s speaks the \
                        same kind: the successor instance consumes it into \
                        its own sequence, nodes disagree on slot contents \
                        (total-order broken)"
                       k.Spec.k_name new_name;
                   ])
            else if k.Spec.k_payload && not (reissues || quiesces) then
              hazard (pending_name p) `Stranded Spec.Validity
                (trace
                   [
                     Printf.sprintf
                       "the stale %s is dropped unrecognised and nothing \
                        re-issues its payload (validity broken)"
                       k.Spec.k_name;
                   ])
          | P_batch k ->
            if
              not
                (Spec.has old_spec Spec.Epoch_flush_on_supersede
                && old_tagged
                && (reissues || quiesces))
            then
              hazard (pending_name p) `Stranded Spec.Epoch_flush
                (trace
                   [
                     Printf.sprintf
                       "the superseded %s instance keeps the open %s batch \
                        parked waiting for a fuller fill (epoch-flush broken)"
                       old_name k.Spec.k_name;
                   ]))
        shape.sh_pending)
    (unfold1 old_spec);
  (* --- new side: the successor's early traffic at a late node ------ *)
  let buffered =
    List.exists (fun (_, s) -> Spec.has s Spec.Buffer_future_epoch) passives
  in
  List.iter
    (fun (k : Spec.kind) ->
      incr checked;
      if not (Spec.has new_spec Spec.Epoch_tagged_wire) then begin
        if Option.is_some (Spec.kind_named old_spec k.Spec.k_name) then
          hazard
            (Printf.sprintf "an early %s of the successor" k.Spec.k_name)
            `Reissued Spec.Total_order
            [
              Printf.sprintf
                "a fast node delivers changeABcast(%s) and emits %s untagged"
                new_name k.Spec.k_name;
              Printf.sprintf
                "a node still on %s consumes it into the old instance's \
                 sequence (total-order broken)"
                old_name;
            ]
      end
      else if not buffered then
        hazard
          (Printf.sprintf "an early %s of the successor" k.Spec.k_name)
          `Stranded Spec.Gap_free_gseq
          [
            Printf.sprintf
              "a fast node delivers changeABcast(%s), bumps its epoch and \
               emits %s tagged with the new generation"
              new_name k.Spec.k_name;
            "a slow node (partitioned, or its copy of the change message is \
             delayed) is still on the old generation: the reliable transport \
             acknowledges the message, so the sender stops retransmitting, \
             and every installed module's epoch filter drops it";
            "no passive module buffers future-generation traffic: when the \
             slow node finally switches, the message is gone for good and \
             delivery blocks on the sequence gap (gap-free-gseq broken)";
          ])
    new_spec.Spec.s_kinds;
  (* --- service contract: the caller's obligations must survive ----- *)
  List.iter
    (fun obl ->
      if Spec.obliges old_spec obl then begin
        incr checked;
        if not (Spec.obliges new_spec obl) then
          hazard
            (Printf.sprintf "the %s obligation" (Spec.obligation_name obl))
            `Stranded obl
            [
              Printf.sprintf
                "callers of %s rely on %s; %s does not promise it" old_name
                (Spec.obligation_name obl) new_name;
            ]
      end)
    contract_obligations;
  (!checked, List.rev !hazards)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let fate_text = function `Stranded -> "stranded" | `Reissued -> "re-issued"

let hazard_message ~old_name ~new_name h =
  Printf.sprintf
    "changeABcast(%s -> %s): %s is %s — %s breaks; counterexample: %s"
    old_name new_name h.h_shape (fate_text h.h_fate)
    (Spec.obligation_name h.h_obligation)
    (String.concat "; " h.h_trace)

let hazard_json h =
  let module J = Dpu_obs.Json in
  J.Obj
    [
      ("shape", J.Str h.h_shape);
      ("fate", J.Str (fate_text h.h_fate));
      ("obligation", J.Str (Spec.obligation_name h.h_obligation));
      ("counterexample", J.List (List.map (fun s -> J.Str s) h.h_trace));
    ]
