(** Determinism lint — a static source scanner for hazards that break
    bit-identical sweeps.

    PR 3 made determinism a load-bearing guarantee: a sweep's results
    are bit-identical at any [-j]. That only holds if simulation code
    never consults unordered or ambient state. This pass flags the
    hazard classes that have bitten (or would):

    - [hashtbl-iter]: [Hashtbl.iter]/[Hashtbl.fold] — iteration order
      depends on hash internals, so anything order-sensitive downstream
      (wire sends, indications, report text) diverges;
    - [poly-compare]: polymorphic [compare]/[Stdlib.compare]/
      [Hashtbl.hash] applied where a typed comparison belongs;
    - [random]: the global [Random] state (everything must draw from
      the seeded {!Dpu_engine.Rng});
    - [wall-clock]: [Unix.gettimeofday]/[Unix.time]/[Sys.time] in
      simulation code (virtual time comes from [Sim.now]);
    - [marshal]: [Marshal] outside the {!Dpu_workload.Sweep} worker
      protocol;
    - [unix-io]: real socket calls ([Unix.socket]/[bind]/[sendto]/
      [recvfrom]/[select]/[connect]) outside the live runtime backend;
    - [spec-opaque]: a [Spec.opaque] declaration — an opaque spec
      makes the behavioural safe-update checker ({!Behaviour}) blind
      to the protocol's in-flight shapes, so every use needs a
      reasoned allow;
    - [registry-spec] (a structural pass, not a substring rule — see
      below): a [Registry.register] call that passes no [~spec]
      argument anywhere in the call site. Silent opacity is the
      failure mode this guards: a registration without a spec gets
      [None], and the composition verifier can only report it at
      check time for plans that update through it.

    [registry-spec] is not in {!rules}: substring rules cannot express
    "A without B nearby". It scans the same stripped source, honours
    the same suppression comments, and reports through the same
    {!finding} type with [f_rule = "registry-spec"].

    Exemptions come in two scopes: single files ([r_exempt], matched as
    path suffixes) and whole directories ([r_exempt_dirs], matched as
    path segments). [lib/live/] is directory-exempt from [wall-clock]
    and [unix-io] — the live backend is defined by real time and real
    sockets — and from nothing else; in particular the exemption does
    not extend to [lib/engine] or [lib/protocols].

    Matching runs on comment- and string-stripped source, so prose
    mentioning a pattern never fires. A finding on a line is silenced
    by a suppression comment on the same or the preceding line:

    {[ (* dpu-lint: allow <rule> — why this use is deterministic *) ]}

    The reason is mandatory: a suppression without one does not count
    (CI fails on any finding without a reasoned suppression). *)

type finding = {
  f_file : string;
  f_line : int;  (** 1-based *)
  f_rule : string;
  f_text : string;  (** the offending source line, trimmed *)
  f_message : string;
}

type rule = {
  r_id : string;
  r_patterns : string list;  (** literal substrings, matched on stripped code *)
  r_message : string;
  r_exempt : string list;
      (** path suffixes where the rule is off by design (e.g. [random]
          inside [engine/rng.ml], [marshal] inside
          [workload/sweep.ml]) *)
  r_exempt_dirs : string list;
      (** path segments (e.g. ["lib/live/"]) under which the rule is
          off for every file *)
}

val rules : rule list
(** The built-in rule set, in reporting order. *)

val strip : string -> string
(** Replace comment bodies and string-literal contents with spaces,
    preserving line structure. Exposed for tests. *)

val scan_source : file:string -> string -> finding list
(** Scan one file's contents. [file] selects rule exemptions and is
    recorded in findings. *)

val scan_file : string -> finding list

val scan_paths : string list -> finding list
(** Recursively scan every [.ml] file under the given files and
    directories, in sorted path order. *)

val pp_finding : Format.formatter -> finding -> unit

val to_json : finding list -> Dpu_obs.Json.t
(** [dpu.lint/1] schema: top-level [ok] plus one record per finding. *)
