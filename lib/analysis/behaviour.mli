(** Behavioural safe-update checker.

    The structural checks of {!Composition} decide whether a swapped-in
    protocol {e fits} the stack; this module decides whether the swap
    can {e strand} work that is already in flight. It follows the shape
    of Castro-Perez & Yoshida's DMst construction:

    + {e 1-unfolding}: walk the old protocol's {!Dpu_kernel.Spec} from
      its quiescent state, firing each transition at most once. Every
      reachable non-quiescent configuration is an in-flight {e shape} a
      switch point can observe — an undelivered payload, an open
      ordering round (a wire message emitted but not consumed), or a
      partially-flushed batch — together with the trace that produced
      it.
    + {e combination} (the ♢ of the paper, scaled to this stack): place
      each shape next to the new protocol's spec under the replacement
      layer's capabilities and ask whether some declared capability
      discharges it — re-issue for undelivered payloads, epoch tagging
      for stale wire messages, supersession flush for open batches, a
      future-epoch buffer for the successor's early traffic.
    + every shape that nothing discharges is a {!hazard}: the checker
      reports which obligation breaks, whether the shape is stranded or
      re-issued into the wrong instance, and a counterexample trace
      (the shape's provenance followed by the failing switch step).

    The verdict is deliberately aligned with the dynamic machinery: a
    pair the checker accepts must survive the nemesis property battery
    across a mid-stream swap, and a pair it rejects must come with a
    concrete violating schedule ([test_analysis.ml] asserts both
    directions). *)

open Dpu_kernel

(** One unit of in-flight work at the switch point. *)
type pending =
  | P_deliver  (** a payload accepted but not yet delivered *)
  | P_wire of Spec.kind  (** a wire message emitted but not consumed *)
  | P_batch of Spec.kind  (** a payload parked in an open batch *)

(** A reachable in-flight configuration of the 1-unfolding. *)
type shape = {
  sh_state : string;  (** LTS state the unfolding stopped in *)
  sh_pending : pending list;  (** in-flight units, oldest first *)
  sh_trace : string list;  (** provenance: one step per fired label *)
}

val unfold1 : Spec.t -> shape list
(** All in-flight shapes of one broadcast: every configuration with a
    non-empty pending set reachable from [s_init] firing each
    transition at most once. Deterministic; deduplicated by
    [(state, pending)] keeping the first (shortest) provenance. *)

val pending_name : pending -> string
(** Human name of one pending unit, e.g.
    ["an in-flight seq.order"]. *)

(** An in-flight shape the old/new combination fails to discharge. *)
type hazard = {
  h_shape : string;  (** {!pending_name} of the undischarged unit *)
  h_fate : [ `Stranded | `Reissued ];
      (** [`Stranded]: the work is lost; [`Reissued]: it re-enters the
          wrong instance (duplicate or order divergence) *)
  h_obligation : Spec.obligation;  (** the obligation that breaks *)
  h_trace : string list;
      (** counterexample: the shape's provenance, then the switch, then
          the failing step *)
}

val check_pair :
  old_name:string ->
  old_spec:Spec.t ->
  new_name:string ->
  new_spec:Spec.t ->
  layer:string * Spec.t ->
  passives:(string * Spec.t) list ->
  int * hazard list
(** Combine the old spec's 1-unfolding with the new spec under the
    layer's capabilities; [passives] are the plan's passive listeners
    (the epoch buffer, when installed). Returns how many discharge
    obligations were examined and the hazards that survived. Both specs
    and the layer spec must be non-opaque — the caller
    ({!Composition.verify}) turns opaque/missing specs into violations
    before getting here. *)

val hazard_message : old_name:string -> new_name:string -> hazard -> string
(** One-line violation text for a report, ending in
    ["counterexample: <step>; <step>; ..."]. *)

val hazard_json : hazard -> Dpu_obs.Json.t
(** Structured rendering for the [dpu.analysis/2] behaviour section. *)
