(* Determinism lint: substring rules over comment- and string-stripped
   OCaml source, with reasoned per-line suppressions. See lint.mli. *)

type finding = {
  f_file : string;
  f_line : int;
  f_rule : string;
  f_text : string;
  f_message : string;
}

type rule = {
  r_id : string;
  r_patterns : string list;
  r_message : string;
  r_exempt : string list;
  r_exempt_dirs : string list;
}

(* Patterns are assembled by concatenation so that this file (and its
   test fixtures built the same way) never matches itself. *)
let p a b = a ^ b

let rules =
  [
    {
      r_id = "hashtbl-iter";
      r_patterns = [ p "Hashtbl." "iter"; p "Hashtbl." "fold" ];
      r_message =
        "Hashtbl iteration order depends on hash-table internals; \
         collect and sort, or iterate a deterministic structure";
      r_exempt = [];
      r_exempt_dirs = [];
    };
    {
      r_id = "poly-compare";
      r_patterns =
        [
          p "sort " "compare";
          p "sort_uniq " "compare";
          p "Stdlib." "compare";
          p "Hashtbl." "hash";
          p "-> " "compare ";
        ];
      r_message =
        "polymorphic compare/hash can diverge across value layouts; \
         use a typed comparison (Int.compare, String.compare, ...)";
      r_exempt = [];
      r_exempt_dirs = [];
    };
    {
      r_id = "random";
      r_patterns = [ p "Random" "." ];
      r_message =
        "the global Random state breaks seed-determinism; draw from \
         the stack's seeded Dpu_engine.Rng instead";
      r_exempt = [ "engine/rng.ml" ];
      r_exempt_dirs = [];
    };
    {
      r_id = "wall-clock";
      r_patterns =
        [ p "Unix." "gettimeofday"; p "Unix." "time"; p "Sys." "time" ];
      r_message =
        "wall-clock reads in simulation code break bit-identical \
         sweeps; virtual time comes from Sim.now";
      r_exempt = [];
      (* the live backend is *defined* by wall-clock time *)
      r_exempt_dirs = [ "lib/live/" ];
    };
    {
      r_id = "marshal";
      r_patterns = [ p "Marshal" "." ];
      r_message =
        "Marshal is layout-sensitive and unsafe on closures; confine \
         it to the Sweep worker wire protocol";
      r_exempt = [ "workload/sweep.ml" ];
      r_exempt_dirs = [];
    };
    {
      r_id = "unsafe-bytes";
      r_patterns =
        [
          p "Bytes." "unsafe_get";
          p "Bytes." "unsafe_set";
          p "Bytes." "unsafe_to_string";
          p "Bytes." "unsafe_of_string";
          p "String." "unsafe_get";
        ];
      r_message =
        "unchecked byte access trades memory safety for speed; the \
         zero-copy wire path must confine it to Wire with a documented \
         lifetime/aliasing rule";
      r_exempt = [];
      r_exempt_dirs = [];
    };
    {
      r_id = "spec-opaque";
      r_patterns = [ p "Spec." "opaque" ];
      r_message =
        "an opaque behavioural spec hides every in-flight shape from \
         the safe-update checker; declare a real Spec.make, or keep \
         the opacity behind a reasoned allow";
      r_exempt = [];
      r_exempt_dirs = [];
    };
    {
      r_id = "unix-io";
      r_patterns =
        [
          p "Unix." "socket";
          p "Unix." "bind";
          p "Unix." "connect";
          p "Unix." "sendto";
          p "Unix." "recvfrom";
          p "Unix." "select";
        ];
      r_message =
        "real sockets are non-deterministic; socket IO belongs to the \
         live runtime backend (lib/live) only";
      r_exempt = [];
      r_exempt_dirs = [ "lib/live/" ];
    };
  ]

(* --- comment / string stripping -------------------------------------- *)

(* Replace the contents of comments and string literals with spaces,
   preserving newlines so line numbers survive. Handles nested (* *)
   comments, string literals inside comments (OCaml lexes them), escape
   sequences, and char literals such as '"' or '\''. *)
let strip src =
  let n = String.length src in
  let buf = Buffer.create n in
  let blank c = Buffer.add_char buf (if c = '\n' then '\n' else ' ') in
  (* i = position of next char to consume *)
  let rec code i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '(' && i + 1 < n && src.[i + 1] = '*' then begin
        blank '(';
        blank '*';
        comment 1 (i + 2)
      end
      else if c = '"' then begin
        blank '"';
        string (i + 1)
      end
      else if c = '\'' && i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\''
      then begin
        (* simple char literal, e.g. '"' or '(' *)
        Buffer.add_char buf '\'';
        blank src.[i + 1];
        Buffer.add_char buf '\'';
        code (i + 3)
      end
      else if c = '\'' && i + 3 < n && src.[i + 1] = '\\' && src.[i + 3] = '\''
      then begin
        (* escaped char literal, e.g. '\n' or '\'' *)
        Buffer.add_char buf '\'';
        blank '\\';
        blank src.[i + 2];
        Buffer.add_char buf '\'';
        code (i + 4)
      end
      else begin
        Buffer.add_char buf c;
        code (i + 1)
      end
  and comment depth i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '(' && i + 1 < n && src.[i + 1] = '*' then begin
        blank '(';
        blank '*';
        comment (depth + 1) (i + 2)
      end
      else if c = '*' && i + 1 < n && src.[i + 1] = ')' then begin
        blank '*';
        blank ')';
        if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
      end
      else if c = '"' then begin
        blank '"';
        comment_string depth (i + 1)
      end
      else begin
        blank c;
        comment depth (i + 1)
      end
  and comment_string depth i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\\' && i + 1 < n then begin
        blank '\\';
        blank src.[i + 1];
        comment_string depth (i + 2)
      end
      else if c = '"' then begin
        blank '"';
        comment depth (i + 1)
      end
      else begin
        blank c;
        comment_string depth (i + 1)
      end
  and string i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\\' && i + 1 < n then begin
        blank '\\';
        blank src.[i + 1];
        string (i + 2)
      end
      else if c = '"' then begin
        Buffer.add_char buf '"';
        code (i + 1)
      end
      else begin
        blank c;
        string (i + 1)
      end
  in
  code 0;
  Buffer.contents buf

(* --- suppressions ----------------------------------------------------- *)

let is_ident = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Substring match, but when the pattern ends in an identifier
   character the match must end at a word boundary — so a pattern like
   "sort compare" does not fire on [sort compare_cycles]. *)
let contains ~sub s =
  let ls = String.length sub and ln = String.length s in
  let boundary i =
    (not (is_ident sub.[ls - 1])) || i + ls >= ln || not (is_ident s.[i + ls])
  in
  let rec go i =
    i + ls <= ln && ((String.sub s i ls = sub && boundary i) || go (i + 1))
  in
  ls > 0 && go 0

let suppression_marker = p "dpu-lint: " "allow"

(* A raw line suppresses [rule] iff it contains
   "dpu-lint: allow <rule>" followed by a non-empty reason (after
   stripping dashes, em-dashes, colons and the comment closer). *)
let suppresses ~rule raw =
  match String.index_opt raw 'd' with
  | None -> false
  | Some _ -> (
      let marker = suppression_marker ^ " " ^ rule in
      let lm = String.length marker and ln = String.length raw in
      let rec find i =
        if i + lm > ln then None
        else if String.sub raw i lm = marker then Some (i + lm)
        else find (i + 1)
      in
      match find 0 with
      | None -> false
      | Some after ->
          (* the rule id must end here, not be a prefix of a longer id *)
          let boundary =
            after >= ln
            ||
            match raw.[after] with
            | 'a' .. 'z' | '0' .. '9' | '-' -> false
            | _ -> true
          in
          if not boundary then false
          else
            (* demand a reason: strip separators and the comment
               closer, require residue *)
            let rest = String.sub raw after (ln - after) in
            let cleaned = Buffer.create 16 in
            String.iter
              (fun c ->
                match c with
                | ' ' | '\t' | '-' | ':' | '*' | ')' | '(' -> ()
                | c -> Buffer.add_char cleaned c)
              rest;
            (* an em-dash is multi-byte; any non-ASCII separator bytes
               also land in [cleaned], so require a letter or digit *)
            String.exists
              (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
              (Buffer.contents cleaned))

(* --- scanning --------------------------------------------------------- *)

let split_lines s = Array.of_list (String.split_on_char '\n' s)

let normalize_path f =
  String.map (fun c -> if c = '\\' then '/' else c) f

(* Plain substring search (no word-boundary logic): directory
   exemptions match path segments like "lib/live/". *)
let path_contains ~sub s =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  ls > 0 && go 0

let exempt ~file r =
  let f = normalize_path file in
  List.exists (fun suffix -> String.ends_with ~suffix f) r.r_exempt
  || List.exists (fun dir -> path_contains ~sub:dir f) r.r_exempt_dirs

(* --- structural pass: registration sites must declare a spec --------- *)

(* A [Registry.register] call must pass [~spec] somewhere in the call
   site — substring rules cannot express "A without B nearby", so this
   runs as its own pass. The window is generous: a registration call
   spans a handful of lines of labelled arguments. *)
let registry_spec_rule = p "registry-" "spec"
let registry_spec_window = 12

let registry_spec_message =
  "every registration site must declare the protocol's behavioural \
   contract: pass ~spec (Spec.opaque, under a reasoned allow, if it \
   is truly unspecifiable)"

let scan_registry_spec ~file ~stripped ~raw findings =
  let register_call = p "Registry." "register" in
  let spec_arg = p "~sp" "ec" in
  Array.iteri
    (fun idx line ->
      if contains ~sub:register_call line then begin
        let last =
          min (Array.length stripped - 1) (idx + registry_spec_window)
        in
        let has_spec = ref false in
        for j = idx to last do
          if contains ~sub:spec_arg stripped.(j) then has_spec := true
        done;
        let suppressed =
          (idx < Array.length raw
          && suppresses ~rule:registry_spec_rule raw.(idx))
          || (idx > 0 && suppresses ~rule:registry_spec_rule raw.(idx - 1))
        in
        if (not !has_spec) && not suppressed then
          findings :=
            {
              f_file = file;
              f_line = idx + 1;
              f_rule = registry_spec_rule;
              f_text = String.trim raw.(idx);
              f_message = registry_spec_message;
            }
            :: !findings
      end)
    stripped

let scan_source ~file content =
  let stripped = split_lines (strip content) in
  let raw = split_lines content in
  let findings = ref [] in
  scan_registry_spec ~file ~stripped ~raw findings;
  List.iter
    (fun r ->
      if not (exempt ~file r) then
        Array.iteri
          (fun idx line ->
            if List.exists (fun pat -> contains ~sub:pat line) r.r_patterns
            then
              let suppressed =
                (idx < Array.length raw && suppresses ~rule:r.r_id raw.(idx))
                || (idx > 0 && suppresses ~rule:r.r_id raw.(idx - 1))
              in
              if not suppressed then
                findings :=
                  {
                    f_file = file;
                    f_line = idx + 1;
                    f_rule = r.r_id;
                    f_text = String.trim raw.(idx);
                    f_message = r.r_message;
                  }
                  :: !findings)
          stripped)
    rules;
  List.sort
    (fun a b ->
      match Int.compare a.f_line b.f_line with
      | 0 -> String.compare a.f_rule b.f_rule
      | c -> c)
    (List.rev !findings)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path = scan_source ~file:path (read_file path)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let scan_paths paths =
  paths
  |> List.concat_map ml_files
  |> List.sort_uniq String.compare
  |> List.concat_map scan_file

let pp_finding ppf f =
  Format.fprintf ppf "@[<v>%s:%d: [%s] %s@,    %s@]" f.f_file f.f_line f.f_rule
    f.f_message f.f_text

let to_json findings =
  let module J = Dpu_obs.Json in
  J.Obj
    [
      ("schema", J.Str "dpu.lint/1");
      ("ok", J.Bool (match findings with [] -> true | _ -> false));
      ("count", J.Int (List.length findings));
      ( "findings",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("file", J.Str f.f_file);
                   ("line", J.Int f.f_line);
                   ("rule", J.Str f.f_rule);
                   ("text", J.Str f.f_text);
                   ("message", J.Str f.f_message);
                 ])
             findings) );
    ]
