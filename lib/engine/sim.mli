(** Discrete-event simulator with a virtual clock.

    All protocol code in this repository runs inside a [Sim.t] event
    loop. Time is virtual, expressed in milliseconds as a [float].
    Events scheduled for the same instant fire in scheduling order,
    which makes every run deterministic given the PRNG seed.

    Internally events live in a preallocated arena (struct-of-arrays
    slots recycled through a free list) and the queue is a specialised
    heap over parallel arrays — steady state allocates nothing per
    event. A {!handle} is an int packing the slot and a reuse stamp, so
    cancelling an already-fired event stays a no-op even after its slot
    has been recycled. *)

type t

type handle
(** A cancellation handle for a scheduled event. Stamp-validated:
    handles of fired events go stale and cancel as a no-op. *)

type group
(** A ready-queue id for one protocol group of a multi-group fabric
    sharing this simulator; see {!new_group}. *)

val create : ?seed:int -> unit -> t
(** A fresh simulator. [seed] (default 1) seeds {!rng}. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val rng : t -> Rng.t
(** The simulator's root PRNG. Subsystems should [Rng.split] it (or
    [Rng.split_key] it, for streams independent of subsystem count). *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at [max time (now t)]. *)

val cancel : t -> handle -> unit
(** Cancel a pending event; cancelling a fired event is a no-op. *)

val is_cancelled : t -> handle -> bool

val every : t -> period:float -> ?jitter:float -> (unit -> unit) -> handle
(** [every t ~period f] runs [f] every [period] ms, starting one period
    from now, until the returned handle is cancelled. [jitter] adds a
    uniform random offset in [\[0, jitter\]] to each firing. *)

(** {1 Groups}

    A fabric running many independent protocol groups over one
    simulator gives each group a ready queue: zero-delay events
    scheduled through {!schedule_group} bypass the global heap and
    drain FIFO, lowest group id first, before the next heap pop. One
    group's immediate work therefore never interleaves through another
    group's timeline, and adding groups does not grow the heap. Code
    that never calls {!new_group} is unaffected. *)

val new_group : t -> group
(** Allocate a ready queue. Group ids order the drain. *)

val schedule_group : t -> group:group -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule}, but a non-positive [delay] enqueues on the
    group's ready queue (runs at the current instant, after other work
    already queued for the group) instead of the heap. *)

val pending : t -> int
(** Number of events still queued — heap plus ready queues, including
    cancelled ones not yet reaped. *)

val ready_pending : t -> group:group -> int
(** Events waiting on one group's ready queue. *)

val groups : t -> int
(** Number of groups allocated with {!new_group}. *)

val step : t -> bool
(** Execute the next event (ready queues first). Returns [false] when
    nothing is queued. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. [until] stops the clock at that virtual time
    (events beyond it remain queued); [max_events] bounds the number of
    executed events (a runaway-loop backstop). Cancelled events reaped
    from the queue do not count against [max_events]. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run ~until:(now t +. d) t]. *)

exception Stopped

val stop : t -> unit
(** Make the current [run] return after the current event completes. *)

(** {1 Observability} *)

val events_scheduled : t -> int
(** Total events (including timers) ever scheduled. *)

val events_executed : t -> int
(** Total non-cancelled events executed. *)

val register_metrics : t -> Dpu_obs.Metrics.t -> unit
(** Export [sim_events_scheduled_total], [sim_events_executed_total],
    [sim_pending_events] and [sim_virtual_now_ms] as snapshot-time
    callbacks (no hot-path cost). *)
