(** Discrete-event simulator with a virtual clock.

    All protocol code in this repository runs inside a [Sim.t] event
    loop. Time is virtual, expressed in milliseconds as a [float].
    Events scheduled for the same instant fire in scheduling order,
    which makes every run deterministic given the PRNG seed. *)

type t

type handle
(** A cancellation handle for a scheduled event. *)

val create : ?seed:int -> unit -> t
(** A fresh simulator. [seed] (default 1) seeds {!rng}. *)

val now : t -> float
(** Current virtual time in milliseconds. *)

val rng : t -> Rng.t
(** The simulator's root PRNG. Subsystems should [Rng.split] it. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at [max time (now t)]. *)

val cancel : handle -> unit
(** Cancel a pending event; cancelling a fired event is a no-op. *)

val is_cancelled : handle -> bool

val every : t -> period:float -> ?jitter:float -> (unit -> unit) -> handle
(** [every t ~period f] runs [f] every [period] ms, starting one period
    from now, until the returned handle is cancelled. [jitter] adds a
    uniform random offset in [\[0, jitter\]] to each firing. *)

val pending : t -> int
(** Number of events still in the queue (including cancelled ones not
    yet reaped). *)

val step : t -> bool
(** Execute the next event. Returns [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the event queue. [until] stops the clock at that virtual time
    (events beyond it remain queued); [max_events] bounds the number of
    executed events (a runaway-loop backstop). Cancelled events reaped
    from the queue do not count against [max_events]. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run ~until:(now t +. d) t]. *)

exception Stopped

val stop : t -> unit
(** Make the current [run] return after the current event completes. *)

(** {1 Observability} *)

val events_scheduled : t -> int
(** Total events (including timers) ever scheduled. *)

val events_executed : t -> int
(** Total non-cancelled events executed. *)

val register_metrics : t -> Dpu_obs.Metrics.t -> unit
(** Export [sim_events_scheduled_total], [sim_events_executed_total],
    [sim_pending_events] and [sim_virtual_now_ms] as snapshot-time
    callbacks (no hot-path cost). *)
