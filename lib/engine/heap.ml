type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [before a b] decides whether entry [a] must be popped before [b]:
   smaller priority first, insertion order breaking ties. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy element is never read: slots >= size are dead. *)
  let dummy = h.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && before h.data.(l) h.data.(i) then l else i in
  let smallest =
    if r < h.size && before h.data.(r) h.data.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let add h ~priority value =
  let entry = { prio = priority; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.data = 0 then h.data <- Array.make 16 entry
  else if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let min_priority h = if h.size = 0 then None else Some h.data.(0).prio

exception Empty

let min_priority_exn h = if h.size = 0 then raise Empty else h.data.(0).prio

let pop_exn h =
  if h.size = 0 then raise Empty
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    root.value
  end

let pop h =
  if h.size = 0 then None
  else begin
    let prio = h.data.(0).prio in
    Some (prio, pop_exn h)
  end

let clear h =
  h.size <- 0;
  h.data <- [||];
  h.next_seq <- 0

let iter_unordered h f =
  for i = 0 to h.size - 1 do
    let e = h.data.(i) in
    f (e.prio, e.value)
  done
