(** Deterministic pseudo-random numbers (SplitMix64).

    The simulator never touches the global [Random] state: every source
    of randomness is an explicit [Rng.t], so a run is a pure function of
    its seed. [split] derives an independent stream, which lets each
    subsystem (network loss, latency jitter, workload) own a generator
    without perturbing the others when call orders change. *)

type t

val create : seed:int -> t
(** Generator seeded with [seed]. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] is a new generator statistically independent of [t];
    advances [t] by one step. *)

val split_key : t -> key:int -> t
(** [split_key t ~key] is a keyed substream: a pure function of [t]'s
    current state and [key] (which must be [>= 0]). Unlike {!split} the
    parent is {e not} advanced, so the stream derived for key [k] is
    identical no matter how many other keys are derived — a fabric
    shard keeps its exact randomness when the total shard count
    changes. [split_key t ~key:0] equals the child the next {!split}
    would produce. *)

val copy : t -> t
(** Snapshot of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val normal : t -> mean:float -> stddev:float -> float
(** Normally distributed (Box–Muller). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normally distributed: [exp (normal mu sigma)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
