type point = { time : float; value : float }

type t = { mutable rev_points : point list; mutable n : int }

let create () = { rev_points = []; n = 0 }

let add t ~time ~value =
  t.rev_points <- { time; value } :: t.rev_points;
  t.n <- t.n + 1

let length t = t.n

let points t =
  (* Insertions are usually already time-ordered; a stable sort keeps
     equal-time points in insertion order. *)
  List.stable_sort
    (fun a b -> Float.compare a.time b.time)
    (List.rev t.rev_points)

let values t = List.rev_map (fun p -> p.value) t.rev_points

let between t ~lo ~hi =
  List.filter (fun p -> p.time >= lo && p.time < hi) (points t)

let stats t =
  let s = Stats.create () in
  List.iter (Stats.add s) (values t);
  s

let stats_between t ~lo ~hi =
  let s = Stats.create () in
  List.iter (fun p -> Stats.add s p.value) (between t ~lo ~hi);
  s

let window_average t ~width =
  assert (width > 0.0);
  match points t with
  | [] -> []
  | ps ->
    let tbl = Hashtbl.create 64 in
    let bucket p = int_of_float (Float.floor (p.time /. width)) in
    List.iter
      (fun p ->
        let b = bucket p in
        let sum, cnt = try Hashtbl.find tbl b with Not_found -> (0.0, 0) in
        Hashtbl.replace tbl b (sum +. p.value, cnt + 1))
      ps;
    (* dpu-lint: allow hashtbl-iter — folded buckets are sorted by index below *)
    let buckets = Hashtbl.fold (fun b acc l -> (b, acc) :: l) tbl [] in
    let buckets = List.sort (fun (a, _) (b, _) -> Int.compare a b) buckets in
    List.map
      (fun (b, (sum, cnt)) ->
        let mid = (float_of_int b +. 0.5) *. width in
        { time = mid; value = sum /. float_of_int cnt })
      buckets

let map_values t f =
  let out = create () in
  List.iter (fun p -> add out ~time:p.time ~value:(f p.value)) (points t);
  out
