type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed64 = int64 t in
  { state = seed64 }

let split_key t ~key =
  assert (key >= 0);
  (* A keyed substream is a pure function of the parent's current state
     and the key: the parent is not advanced, and the stream for key k
     does not depend on how many other keys exist. Key k lands where k
     sequential [split]s of a copy would: state + (k+1)*gamma, mixed.
     Shard k therefore draws the same stream whether the fabric has 4
     shards or 400. *)
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (key + 1)) golden_gamma)) }

let copy t = { state = t.state }

let float t =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int and stays
     non-negative. Modulo bias is negligible for the small ranges used
     (node counts, array indices). *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let bool t ~p = float t < p

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let normal t ~mean ~stddev =
  let u1 = float t and u2 = float t in
  let u1 = if u1 <= 0.0 then epsilon_float else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
