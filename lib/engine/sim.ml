(* Event arena: every scheduled event lives in a preallocated slot of a
   struct-of-arrays pool, and the priority queue is a specialised binary
   heap over parallel (time, seq, slot) arrays. Steady state allocates
   nothing per event — slots and heap cells are recycled — which is what
   keeps 127-node sweeps laptop-fast.

   A handle is an int packing [slot | stamp << 32]. The stamp is bumped
   every time a slot is freed, so a stale handle (cancelling an event
   that already fired, possibly after its slot was reused) validates
   against the current stamp and becomes a no-op, exactly like the old
   record-per-event representation.

   Ordering contract (unchanged): events pop by (time, seq) with seq
   strictly increasing per schedule, a total order — same-instant events
   fire in scheduling order, so any correct heap yields the identical
   sequence the old [Heap]-of-records implementation did.

   Groups: a fabric of many protocol groups shares one simulator. Each
   group owns a FIFO ready queue for its zero-delay events; ready queues
   drain (lowest group first, FIFO within a group) before the heap pops,
   so one group's immediate work never interleaves through the global
   heap. Only group-tagged schedulers use them — the legacy paths are
   byte-identical. *)

type handle = int

type group = int

let slot_of_handle h = h land 0xFFFF_FFFF

let stamp_of_handle h = h lsr 32

let pack ~slot ~stamp = (stamp lsl 32) lor slot

let stamp_mask = 0x3FFF_FFFF

let nop () = ()

(* Slot states. *)
let st_free = 0

let st_queued = 1 (* in the heap or a ready queue *)

let st_cancelled = 2 (* still queued; reaped without executing *)

let st_detached = 3 (* live but not queued: [every]'s outer handle *)

type ready = {
  mutable rbuf : int array; (* circular buffer of slots *)
  mutable rhead : int;
  mutable rlen : int;
}

type t = {
  (* arena *)
  mutable fns : (unit -> unit) array;
  mutable stamps : int array;
  mutable states : int array;
  mutable free : int array; (* stack of free slots *)
  mutable free_len : int;
  (* event heap: parallel arrays ordered by (time, seq) *)
  mutable h_time : float array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable h_len : int;
  mutable next_seq : int;
  (* per-group ready queues *)
  mutable rings : ready array;
  mutable nrings : int;
  mutable ready_total : int;
  mutable clock : float;
  mutable stopping : bool;
  root_rng : Rng.t;
  mutable scheduled : int;
  mutable executed : int;
}

exception Stopped

let initial_capacity = 256

let create ?(seed = 1) () =
  let cap = initial_capacity in
  {
    fns = Array.make cap nop;
    stamps = Array.make cap 0;
    states = Array.make cap st_free;
    (* slots pop in ascending order: free.(i) = cap-1-i *)
    free = Array.init cap (fun i -> cap - 1 - i);
    free_len = cap;
    h_time = Array.make cap 0.0;
    h_seq = Array.make cap 0;
    h_slot = Array.make cap 0;
    h_len = 0;
    next_seq = 0;
    rings = [||];
    nrings = 0;
    ready_total = 0;
    clock = 0.0;
    stopping = false;
    root_rng = Rng.create ~seed;
    scheduled = 0;
    executed = 0;
  }

let now t = t.clock

let rng t = t.root_rng

(* ------------------------------------------------------------------ *)
(* Arena                                                              *)
(* ------------------------------------------------------------------ *)

let grow_arena t =
  let cap = Array.length t.fns in
  let cap' = cap * 2 in
  let fns = Array.make cap' nop in
  Array.blit t.fns 0 fns 0 cap;
  t.fns <- fns;
  let stamps = Array.make cap' 0 in
  Array.blit t.stamps 0 stamps 0 cap;
  t.stamps <- stamps;
  let states = Array.make cap' st_free in
  Array.blit t.states 0 states 0 cap;
  t.states <- states;
  let free = Array.make cap' 0 in
  Array.blit t.free 0 free 0 t.free_len;
  (* new slots cap .. cap'-1, lower slots popping first *)
  for i = 0 to cap - 1 do
    free.(t.free_len + i) <- cap' - 1 - i
  done;
  t.free <- free;
  t.free_len <- t.free_len + cap

let alloc t ~state fn =
  if t.free_len = 0 then grow_arena t;
  t.free_len <- t.free_len - 1;
  let slot = t.free.(t.free_len) in
  t.fns.(slot) <- fn;
  t.states.(slot) <- state;
  pack ~slot ~stamp:t.stamps.(slot)

let free_slot t slot =
  t.fns.(slot) <- nop;
  t.stamps.(slot) <- (t.stamps.(slot) + 1) land stamp_mask;
  t.states.(slot) <- st_free;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1

let live t h = t.stamps.(slot_of_handle h) = stamp_of_handle h

let cancel_in t h =
  if live t h then begin
    let slot = slot_of_handle h in
    let st = t.states.(slot) in
    if st = st_queued then t.states.(slot) <- st_cancelled
    else if st = st_detached then free_slot t slot
  end

let is_cancelled_in t h =
  (not (live t h)) || t.states.(slot_of_handle h) = st_cancelled

(* ------------------------------------------------------------------ *)
(* Heap (time, seq, slot) — min by time, FIFO tie-break by seq         *)
(* ------------------------------------------------------------------ *)

let heap_before t i j =
  t.h_time.(i) < t.h_time.(j)
  || (t.h_time.(i) = t.h_time.(j) && t.h_seq.(i) < t.h_seq.(j))

let heap_swap t i j =
  let tm = t.h_time.(i) in
  t.h_time.(i) <- t.h_time.(j);
  t.h_time.(j) <- tm;
  let sq = t.h_seq.(i) in
  t.h_seq.(i) <- t.h_seq.(j);
  t.h_seq.(j) <- sq;
  let sl = t.h_slot.(i) in
  t.h_slot.(i) <- t.h_slot.(j);
  t.h_slot.(j) <- sl

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_before t i parent then begin
      heap_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.h_len then begin
    let r = l + 1 in
    let smallest = if r < t.h_len && heap_before t r l then r else l in
    if heap_before t smallest i then begin
      heap_swap t i smallest;
      sift_down t smallest
    end
  end

let heap_push t ~time slot =
  let cap = Array.length t.h_time in
  if t.h_len = cap then begin
    let cap' = cap * 2 in
    let time_a = Array.make cap' 0.0 in
    Array.blit t.h_time 0 time_a 0 cap;
    t.h_time <- time_a;
    let seq_a = Array.make cap' 0 in
    Array.blit t.h_seq 0 seq_a 0 cap;
    t.h_seq <- seq_a;
    let slot_a = Array.make cap' 0 in
    Array.blit t.h_slot 0 slot_a 0 cap;
    t.h_slot <- slot_a
  end;
  let i = t.h_len in
  t.h_time.(i) <- time;
  t.h_seq.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.h_slot.(i) <- slot;
  t.h_len <- t.h_len + 1;
  sift_up t i

(* Pop the root slot; caller has read [t.h_time.(0)] already. *)
let heap_pop t =
  let slot = t.h_slot.(0) in
  t.h_len <- t.h_len - 1;
  if t.h_len > 0 then begin
    t.h_time.(0) <- t.h_time.(t.h_len);
    t.h_seq.(0) <- t.h_seq.(t.h_len);
    t.h_slot.(0) <- t.h_slot.(t.h_len);
    sift_down t 0
  end;
  slot

(* ------------------------------------------------------------------ *)
(* Scheduling                                                         *)
(* ------------------------------------------------------------------ *)

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let h = alloc t ~state:st_queued fn in
  heap_push t ~time (slot_of_handle h);
  t.scheduled <- t.scheduled + 1;
  h

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) fn

(* ------------------------------------------------------------------ *)
(* Groups                                                             *)
(* ------------------------------------------------------------------ *)

let new_group t =
  let g = t.nrings in
  let ring = { rbuf = Array.make 16 0; rhead = 0; rlen = 0 } in
  let rings = Array.make (g + 1) ring in
  Array.blit t.rings 0 rings 0 g;
  t.rings <- rings;
  t.nrings <- g + 1;
  g

let ready_push t g slot =
  let r = t.rings.(g) in
  let cap = Array.length r.rbuf in
  if r.rlen = cap then begin
    let buf = Array.make (cap * 2) 0 in
    for i = 0 to r.rlen - 1 do
      buf.(i) <- r.rbuf.((r.rhead + i) mod cap)
    done;
    r.rbuf <- buf;
    r.rhead <- 0
  end;
  r.rbuf.((r.rhead + r.rlen) mod Array.length r.rbuf) <- slot;
  r.rlen <- r.rlen + 1;
  t.ready_total <- t.ready_total + 1

let ready_pop t g =
  let r = t.rings.(g) in
  let slot = r.rbuf.(r.rhead) in
  r.rhead <- (r.rhead + 1) mod Array.length r.rbuf;
  r.rlen <- r.rlen - 1;
  t.ready_total <- t.ready_total - 1;
  slot

let schedule_group t ~group ~delay fn =
  if group < 0 || group >= t.nrings then
    invalid_arg "Sim.schedule_group: unknown group";
  if delay > 0.0 then schedule t ~delay fn
  else begin
    let h = alloc t ~state:st_queued fn in
    ready_push t group (slot_of_handle h);
    t.scheduled <- t.scheduled + 1;
    h
  end

let cancel t h = cancel_in t h

let is_cancelled t h = is_cancelled_in t h

let every t ~period ?(jitter = 0.0) fn =
  assert (period > 0.0);
  (* The outer handle lives as long as the ticker (detached: never
     queued); each tick checks it so that cancelling stops the chain. *)
  let outer = alloc t ~state:st_detached nop in
  let next_delay () =
    if jitter > 0.0 then period +. Rng.uniform t.root_rng ~lo:0.0 ~hi:jitter
    else period
  in
  let rec tick () =
    if not (is_cancelled_in t outer) then begin
      fn ();
      if not (is_cancelled_in t outer) then
        ignore (schedule t ~delay:(next_delay ()) tick : handle)
    end
  in
  ignore (schedule t ~delay:(next_delay ()) tick : handle);
  outer

let pending t = t.h_len + t.ready_total

(* Run the event in [slot], freeing it first so that a cancel of its own
   handle from inside the callback is a stale-stamp no-op (the old
   representation got this by setting [cancelled] before the call). *)
let exec_slot t slot =
  let st = t.states.(slot) in
  let fn = t.fns.(slot) in
  free_slot t slot;
  if st = st_queued then begin
    t.executed <- t.executed + 1;
    fn ()
  end

(* Pop and run one heap event known to exist, advancing the clock to
   [time] (its priority, read by the caller). Cancelled events are
   reaped without counting as executed. *)
let exec_next t ~time =
  let slot = heap_pop t in
  t.clock <- time;
  exec_slot t slot

(* Run one ready event (lowest group id first, FIFO within a group) at
   the current clock. Caller guarantees [t.ready_total > 0]. *)
let exec_ready t =
  let g = ref 0 in
  while t.rings.(!g).rlen = 0 do
    incr g
  done;
  exec_slot t (ready_pop t !g)

let step t =
  if t.ready_total > 0 then begin
    exec_ready t;
    true
  end
  else if t.h_len = 0 then false
  else begin
    exec_next t ~time:t.h_time.(0);
    true
  end

let stop t = t.stopping <- true

let run ?until ?(max_events = max_int) t =
  t.stopping <- false;
  (* Bound the count of events actually executed: popping a cancelled
     event must not burn budget, or a run bounded by [max_events] ends
     early. [t.executed] only advances on real executions, so track a
     target against it. *)
  let exec_limit =
    if max_events >= max_int - t.executed then max_int else t.executed + max_events
  in
  let continue = ref true in
  while !continue do
    if t.stopping || t.executed >= exec_limit then continue := false
    else if t.ready_total > 0 then begin
      (* Ready events fire at the current instant; they only outrank the
         horizon when the clock itself does. *)
      match until with
      | Some limit when t.clock > limit -> continue := false
      | Some _ | None -> exec_ready t
    end
    else if t.h_len = 0 then continue := false
    else begin
      let time = t.h_time.(0) in
      match until with
      | Some limit when time > limit ->
        t.clock <- limit;
        continue := false
      | Some _ | None -> exec_next t ~time
    end
  done;
  (* Even with an empty queue, honour the requested horizon so that
     [now] reflects the elapsed virtual time — but never jump past
     events still queued before the horizon (the loop may have exited
     via [max_events] or [stop] with work pending; fast-forwarding then
     would make the next [step] move the clock backwards). *)
  match until with
  | Some limit when t.clock < limit && not t.stopping && t.ready_total = 0 ->
    if t.h_len = 0 || t.h_time.(0) > limit then t.clock <- limit
  | Some _ | None -> ()

let run_for t d = run ~until:(t.clock +. d) t

let events_scheduled t = t.scheduled

let events_executed t = t.executed

let groups t = t.nrings

let ready_pending t ~group =
  if group < 0 || group >= t.nrings then 0 else t.rings.(group).rlen

let register_metrics t m =
  Dpu_obs.Metrics.register_int m "sim_events_scheduled_total" (fun () -> t.scheduled);
  Dpu_obs.Metrics.register_int m "sim_events_executed_total" (fun () -> t.executed);
  Dpu_obs.Metrics.register_float m "sim_pending_events" (fun () ->
      float_of_int (pending t));
  Dpu_obs.Metrics.register_float m "sim_virtual_now_ms" (fun () -> t.clock)
