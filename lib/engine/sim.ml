(* The event record doubles as its own cancellation handle: one
   allocation per scheduled event instead of a handle plus an event. *)
type handle = { mutable cancelled : bool; fn : unit -> unit }

type t = {
  queue : handle Heap.t;
  mutable clock : float;
  mutable stopping : bool;
  root_rng : Rng.t;
  mutable scheduled : int;
  mutable executed : int;
}

exception Stopped

let create ?(seed = 1) () =
  {
    queue = Heap.create ();
    clock = 0.0;
    stopping = false;
    root_rng = Rng.create ~seed;
    scheduled = 0;
    executed = 0;
  }

let now t = t.clock

let rng t = t.root_rng

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let h = { cancelled = false; fn } in
  Heap.add t.queue ~priority:time h;
  t.scheduled <- t.scheduled + 1;
  h

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) fn

let cancel h = h.cancelled <- true

let is_cancelled h = h.cancelled

let every t ~period ?(jitter = 0.0) fn =
  assert (period > 0.0);
  (* The outer handle lives as long as the ticker; each tick checks it so
     that cancelling stops the chain. *)
  let outer = { cancelled = false; fn = ignore } in
  let next_delay () =
    if jitter > 0.0 then period +. Rng.uniform t.root_rng ~lo:0.0 ~hi:jitter
    else period
  in
  let rec tick () =
    if not outer.cancelled then begin
      fn ();
      if not outer.cancelled then
        ignore (schedule t ~delay:(next_delay ()) tick : handle)
    end
  in
  ignore (schedule t ~delay:(next_delay ()) tick : handle);
  outer

let pending t = Heap.length t.queue

(* Pop and run one event known to exist, advancing the clock to [time]
   (its priority, read by the caller). Cancelled events are reaped
   without counting as executed. *)
let exec_next t ~time =
  let ev = Heap.pop_exn t.queue in
  t.clock <- time;
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.executed <- t.executed + 1;
    ev.fn ()
  end

let step t =
  if Heap.is_empty t.queue then false
  else begin
    exec_next t ~time:(Heap.min_priority_exn t.queue);
    true
  end

let stop t = t.stopping <- true

let run ?until ?(max_events = max_int) t =
  t.stopping <- false;
  (* Bound the count of events actually executed: popping a cancelled
     event must not burn budget, or a run bounded by [max_events] ends
     early. [t.executed] only advances on real executions, so track a
     target against it. *)
  let exec_limit =
    if max_events >= max_int - t.executed then max_int else t.executed + max_events
  in
  let continue = ref true in
  while !continue do
    if t.stopping || t.executed >= exec_limit then continue := false
    else if Heap.is_empty t.queue then continue := false
    else begin
      let time = Heap.min_priority_exn t.queue in
      match until with
      | Some limit when time > limit ->
        t.clock <- limit;
        continue := false
      | Some _ | None -> exec_next t ~time
    end
  done;
  (* Even with an empty queue, honour the requested horizon so that
     [now] reflects the elapsed virtual time — but never jump past
     events still queued before the horizon (the loop may have exited
     via [max_events] or [stop] with work pending; fast-forwarding then
     would make the next [step] move the clock backwards). *)
  match until with
  | Some limit when t.clock < limit && not t.stopping -> (
    match Heap.min_priority t.queue with
    | None -> t.clock <- limit
    | Some next -> if next > limit then t.clock <- limit)
  | Some _ | None -> ()

let run_for t d = run ~until:(t.clock +. d) t

let events_scheduled t = t.scheduled

let events_executed t = t.executed

let register_metrics t m =
  Dpu_obs.Metrics.register_int m "sim_events_scheduled_total" (fun () -> t.scheduled);
  Dpu_obs.Metrics.register_int m "sim_events_executed_total" (fun () -> t.executed);
  Dpu_obs.Metrics.register_float m "sim_pending_events" (fun () ->
      float_of_int (Heap.length t.queue));
  Dpu_obs.Metrics.register_float m "sim_virtual_now_ms" (fun () -> t.clock)
