(** Array-based binary min-heap with stable ordering.

    Elements are ordered by a [float] priority; elements with equal
    priority are returned in insertion order (FIFO). This stability is
    what makes the simulator deterministic: two events scheduled for the
    same instant fire in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of elements currently in [h]. *)

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** [add h ~priority x] inserts [x]. O(log n). *)

val min_priority : 'a t -> float option
(** Priority of the minimum element, if any. O(1). *)

exception Empty

val min_priority_exn : 'a t -> float
(** Like {!min_priority} but raising {!Empty}: no [option] allocation
    on the simulator's hot path. O(1). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum element with its priority. O(log n). *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum element, raising {!Empty} when the
    heap is empty. Read its priority with {!min_priority_exn} first —
    this pair allocates nothing, unlike {!pop}'s [Some (prio, v)]. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum element without removing it. O(1). *)

val clear : 'a t -> unit
(** Remove all elements. *)

val iter_unordered : 'a t -> (float * 'a -> unit) -> unit
(** Iterate over the contents in unspecified order (for introspection). *)
