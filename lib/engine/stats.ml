type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable data : float array;
  mutable len : int;
  mutable sorted : float array option; (* cache invalidated by add *)
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = nan;
    max_v = nan;
    data = [||];
    len = 0;
    sorted = None;
  }

let push_raw t x =
  if t.len = Array.length t.data then begin
    let cap = if t.len = 0 then 64 else t.len * 2 in
    let data = Array.make cap 0.0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end;
  push_raw t x;
  t.sorted <- None

let add_all t xs = List.iter (add t) xs

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min_v

let max t = t.max_v

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.data 0 t.len in
    Array.sort Float.compare s;
    t.sorted <- Some s;
    s

let percentile t p =
  if t.n = 0 then nan
  else begin
    let s = sorted t in
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then s.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
    end
  end

let median t = percentile t 50.0

let samples t = Array.sub t.data 0 t.len

let merge a b =
  let t = create () in
  Array.iter (add t) (samples a);
  Array.iter (add t) (samples b);
  t

let clear t =
  t.n <- 0;
  t.mean <- 0.0;
  t.m2 <- 0.0;
  t.min_v <- nan;
  t.max_v <- nan;
  t.data <- [||];
  t.len <- 0;
  t.sorted <- None

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f" t.n (mean t)
      (percentile t 50.0) (percentile t 95.0) (max t)
