module Fabric = Dpu_core.Fabric
module MW = Dpu_core.Middleware

type t = {
  fabric : Fabric.t;
  ring : Hash_ring.t;
  services : Lock_service.t array array; (* shard -> group-local node *)
}

let create ?vnodes fabric =
  let shards = Fabric.shards fabric in
  let ring = Hash_ring.create ~shards ?vnodes () in
  let services =
    Array.init shards (fun g ->
        let mw = Fabric.group fabric g in
        Array.init (MW.n mw) (fun node -> Lock_service.attach mw ~node))
  in
  { fabric; ring; services }

let shard_of t lock = Hash_ring.shard_of t.ring lock

let service t ~shard ~node = t.services.(shard).(node)

(* A client is a (shard-local) node identity on every shard: lock
   queues record node ids, which only mean something within the owning
   shard's group. *)
let acquire t ~node lock = Lock_service.acquire t.services.(shard_of t lock).(node) lock

let release t ~node lock = Lock_service.release t.services.(shard_of t lock).(node) lock

let holder t lock = Lock_service.holder t.services.(shard_of t lock).(0) lock

let holds t ~node lock = Lock_service.holds t.services.(shard_of t lock).(node) lock

let shard_digests t ~shard =
  Array.to_list (Array.map Lock_service.digest t.services.(shard))

let shard_converged t ~shard =
  match shard_digests t ~shard with
  | [] -> true
  | d :: rest -> List.for_all (String.equal d) rest

let converged t =
  let ok = ref true in
  Array.iteri (fun g _ -> if not (shard_converged t ~shard:g) then ok := false) t.services;
  !ok
