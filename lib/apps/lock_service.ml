module MW = Dpu_core.Middleware
module Msg = Dpu_kernel.Msg
module Gm = Dpu_protocols.Gm

let sep = '\x00'

type op =
  | Acquire of string * int
  | Release of string * int
  | Evict of int

let encode = function
  | Acquire (l, node) -> Printf.sprintf "lk.acq%c%s%c%d" sep l sep node
  | Release (l, node) -> Printf.sprintf "lk.rel%c%s%c%d" sep l sep node
  | Evict node -> Printf.sprintf "lk.evict%c%d" sep node

let decode body =
  match String.split_on_char sep body with
  | [ "lk.acq"; l; node ] -> Option.map (fun n -> Acquire (l, n)) (int_of_string_opt node)
  | [ "lk.rel"; l; node ] -> Option.map (fun n -> Release (l, n)) (int_of_string_opt node)
  | [ "lk.evict"; node ] -> Option.map (fun n -> Evict n) (int_of_string_opt node)
  | _ -> None

type t = {
  mw : MW.t;
  node : int;
  (* lock name -> holder :: waiters (FIFO; empty list = free) *)
  queues : (string, int list) Hashtbl.t;
  dead : (int, unit) Hashtbl.t;
  mutable granted_cb : (string -> unit) list;
  mutable view : int list;  (* last installed membership, for eviction duty *)
}

let queue t l = match Hashtbl.find_opt t.queues l with Some q -> q | None -> []

let set_queue t l q = if q = [] then Hashtbl.remove t.queues l else Hashtbl.replace t.queues l q

let notify_if_granted t l before after =
  let head = function x :: _ -> Some x | [] -> None in
  if head after = Some t.node && head before <> Some t.node then
    List.iter (fun cb -> cb l) t.granted_cb

(* Apply one ordered operation. Deterministic: replicas that applied the
   same prefix have identical tables. *)
let apply t op =
  match op with
  | Acquire (l, node) ->
    if not (Hashtbl.mem t.dead node) then begin
      let q = queue t l in
      if not (List.mem node q) then begin
        let q' = q @ [ node ] in
        set_queue t l q';
        notify_if_granted t l q q'
      end
    end
  | Release (l, node) -> (
    match queue t l with
    | head :: rest when head = node ->
      set_queue t l rest;
      notify_if_granted t l (head :: rest) rest
    | _ :: _ | [] -> () (* releasing a lock you don't hold is a no-op *))
  | Evict node ->
    if not (Hashtbl.mem t.dead node) then begin
      Hashtbl.replace t.dead node ();
      let locks =
        (* dpu-lint: allow hashtbl-iter — folded lock names are sorted before use *)
        Hashtbl.fold (fun l _ acc -> l :: acc) t.queues [] |> List.sort String.compare
      in
      List.iter
        (fun l ->
          let q = queue t l in
          let q' = List.filter (fun n -> n <> node) q in
          if q' <> q then begin
            set_queue t l q';
            notify_if_granted t l q q'
          end)
        locks
    end

let broadcast t op =
  let body = encode op in
  ignore (MW.broadcast t.mw ~node:t.node ~size:(64 + String.length body) body : Msg.t)

(* Eviction duty: when membership drops a node, the smallest surviving
   member broadcasts the eviction. The eviction takes effect where it
   lands in the total order, identically everywhere; duplicates (e.g.
   two successive view changes) are idempotent. *)
let on_view t (view : Gm.view) =
  let gone = List.filter (fun n -> not (List.mem n view.Gm.members)) t.view in
  t.view <- view.Gm.members;
  match view.Gm.members with
  | first :: _ when first = t.node ->
    List.iter (fun n -> broadcast t (Evict n)) gone
  | _ :: _ | [] -> ()

let attach mw ~node =
  let t =
    {
      mw;
      node;
      queues = Hashtbl.create 16;
      dead = Hashtbl.create 4;
      granted_cb = [];
      view = List.init (MW.n mw) (fun i -> i);
    }
  in
  MW.subscribe mw ~node (fun (m : Msg.t) ->
      match decode m.body with Some op -> apply t op | None -> ());
  (if (MW.config mw).MW.profile.Dpu_core.Stack_builder.with_gm then
     MW.on_view mw ~node (on_view t));
  t

let node t = t.node

let acquire t l = broadcast t (Acquire (l, t.node))

let release t l = broadcast t (Release (l, t.node))

let holder t l = match queue t l with h :: _ -> Some h | [] -> None

let waiters t l = match queue t l with _ :: rest -> rest | [] -> []

let holds t l = holder t l = Some t.node

let on_granted t cb = t.granted_cb <- cb :: t.granted_cb

(* dpu-lint: allow hashtbl-iter — folded nodes are sorted before use *)
let evicted t = Hashtbl.fold (fun n () acc -> n :: acc) t.dead [] |> List.sort Int.compare

let digest t =
  let entries =
    (* dpu-lint: allow hashtbl-iter — folded queues are sorted by lock name below *)
    Hashtbl.fold (fun l q acc -> (l, q) :: acc) t.queues []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 128 in
  List.iter
    (fun (l, q) ->
      Buffer.add_string buf l;
      List.iter (fun n -> Buffer.add_string buf (Printf.sprintf ",%d" n)) q;
      Buffer.add_char buf ';')
    entries;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "!%d" n)) (evicted t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
