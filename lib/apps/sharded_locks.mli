(** The sharded front of {!Lock_service}: lock names route through the
    same consistent-hash ring as {!Sharded_kv}, so each lock's FIFO
    queue lives entirely inside one shard's total order. Locks on
    different shards never contend on ordering — or on a protocol
    switch.

    [node] arguments are group-local: the caller acts as that node of
    whichever shard owns the lock (every group runs the same node
    count ±1, so small node ids are valid everywhere). *)

type t

val create : ?vnodes:int -> Dpu_core.Fabric.t -> t

val shard_of : t -> string -> int

val service : t -> shard:int -> node:int -> Lock_service.t

val acquire : t -> node:int -> string -> unit

val release : t -> node:int -> string -> unit

val holder : t -> string -> int option
(** Current holder (group-local node id of the owning shard), read at
    the shard's node 0. *)

val holds : t -> node:int -> string -> bool

val shard_digests : t -> shard:int -> string list

val shard_converged : t -> shard:int -> bool

val converged : t -> bool
