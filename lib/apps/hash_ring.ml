(* Consistent-hash ring with virtual nodes (Karger et al.): each shard
   owns [vnodes] points on a 62-bit ring; a key belongs to the shard
   owning the first point at or after the key's hash, wrapping at the
   top. Adding a shard only claims the arcs in front of its own points,
   so roughly 1/(s+1) of the keyspace moves and the rest stays put. *)

type t = {
  points : int array; (* sorted ring positions *)
  owners : int array; (* owners.(i) owns points.(i) *)
  shards : int;
  vnodes : int;
}

(* FNV-1a 64-bit. Its upper bits disperse poorly for short similar
   strings, and the ring folds to 62 bits from the top — so finish with
   a murmur3-style avalanche before folding to a non-negative int. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  Int64.to_int (Int64.shift_right_logical z 2)

let point ~shard ~vnode = fnv1a (Printf.sprintf "shard-%d-vnode-%d" shard vnode)

let create ~shards ?(vnodes = 64) () =
  if shards < 1 then invalid_arg "Hash_ring.create: shards must be >= 1";
  if vnodes < 1 then invalid_arg "Hash_ring.create: vnodes must be >= 1";
  let pts = Array.init (shards * vnodes) (fun i -> (point ~shard:(i / vnodes) ~vnode:(i mod vnodes), i / vnodes)) in
  (* Ties (astronomically unlikely) resolve to the smaller shard id so
     the ring is a deterministic function of (shards, vnodes). *)
  Array.sort
    (fun (p1, s1) (p2, s2) ->
      match Int.compare p1 p2 with 0 -> Int.compare s1 s2 | c -> c)
    pts;
  {
    points = Array.map fst pts;
    owners = Array.map snd pts;
    shards;
    vnodes;
  }

let shards t = t.shards

let vnodes t = t.vnodes

let hash = fnv1a

(* First index with points.(i) >= h, or 0 when h is past the last
   point (wrap). *)
let successor t h =
  let n = Array.length t.points in
  if h > t.points.(n - 1) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.points.(mid) >= h then hi := mid else lo := mid + 1
    done;
    !lo
  end

let shard_of t key = t.owners.(successor t (fnv1a key))

let spread t ~keys =
  let counts = Array.make t.shards 0 in
  List.iter
    (fun k ->
      let s = shard_of t k in
      counts.(s) <- counts.(s) + 1)
    keys;
  counts
