(** Consistent-hash ring: keys → shard, stable under resharding.

    Each shard owns [vnodes] pseudo-random points on a ring of hashes;
    a key maps to the shard owning the next point clockwise from the
    key's hash. Growing the ring from [s] to [s+1] shards moves only
    the arcs claimed by the new shard's points (≈ 1/(s+1) of the keys);
    every other key keeps its shard — the property that lets a fabric
    reshard without reshuffling the world. Purely deterministic: the
    mapping is a function of (shards, vnodes, key) only. *)

type t

val create : shards:int -> ?vnodes:int -> unit -> t
(** [vnodes] (default 64) points per shard; more points smooth the
    load spread at the cost of a larger (still tiny) ring. *)

val shards : t -> int

val vnodes : t -> int

val shard_of : t -> string -> int
(** The shard owning this key. *)

val hash : string -> int
(** The ring's hash function (FNV-1a 64, folded non-negative). *)

val spread : t -> keys:string list -> int array
(** Keys-per-shard histogram — how evenly a keyset lands. *)
