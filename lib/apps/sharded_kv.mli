(** The sharded front of {!Replicated_kv}: a consistent-hash ring over
    keys routes every operation to one group of a {!Dpu_core.Fabric},
    where it rides that shard's totally ordered broadcast.

    Each shard is an independent replicated store — its own history,
    its own digests — so ordering (and protocol replacement!) on one
    shard never waits on another. Cross-shard reads stay local: a read
    goes to a replica of the owning shard and is served from its state.

    {[
      let fabric = Fabric.create ~shards:4 ~n:12 () in
      let kv = Sharded_kv.create fabric in
      Sharded_kv.put kv "user:42" "ada";
      Fabric.change_protocol fabric ~shard:(Sharded_kv.shard_of kv "user:42")
        Variants.sequencer;
      Sharded_kv.put kv "user:42" "lovelace";   (* rides the switch *)
      Fabric.run_until_quiescent fabric
    ]} *)

type t

val create : ?vnodes:int -> Dpu_core.Fabric.t -> t
(** Attach one replica per node of every group. [vnodes] is the ring's
    points-per-shard (default 64). *)

val fabric : t -> Dpu_core.Fabric.t

val ring : t -> Hash_ring.t

val shard_of : t -> string -> int
(** Which shard owns a key. *)

val replicas : t -> shard:int -> Replicated_kv.t array
(** The shard's replicas, indexed by group-local node. *)

val replica : t -> shard:int -> node:int -> Replicated_kv.t

(** {1 Updates (ordered within the owning shard)} *)

val put : t -> string -> string -> unit

val delete : t -> string -> unit

val incr : t -> ?by:int -> string -> unit

(** {1 Local reads} *)

val get : t -> string -> string option

val get_int : t -> string -> int

(** {1 Convergence} *)

val shard_digests : t -> shard:int -> string list
(** Digest of every replica of the shard (all equal when the shard is
    quiescent). *)

val shard_converged : t -> shard:int -> bool

val converged : t -> bool
(** Every shard's replicas agree. *)

val size : t -> int
(** Live keys across all shards (counted at each shard's node 0). *)
