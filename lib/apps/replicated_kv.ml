module MW = Dpu_core.Middleware
module Msg = Dpu_kernel.Msg

(* Operations are encoded into the message body with a separator that
   cannot appear in keys produced by reasonable applications; values are
   arbitrary apart from the separator. *)
let sep = '\x00'

let snap_sep = '\x02'

type op =
  | Put of string * string
  | Delete of string
  | Incr of string * int
  | Sync_req of { joiner : int; responder : int }
  | Sync_snapshot of { joiner : int; applied : int; entries : (string * string) list }

let encode = function
  | Put (k, v) -> Printf.sprintf "put%c%s%c%s" sep k sep v
  | Delete k -> Printf.sprintf "del%c%s" sep k
  | Incr (k, by) -> Printf.sprintf "inc%c%s%c%d" sep k sep by
  | Sync_req { joiner; responder } -> Printf.sprintf "syncreq%c%d%c%d" sep joiner sep responder
  | Sync_snapshot { joiner; applied; entries } ->
    let body =
      String.concat (String.make 1 snap_sep)
        (List.map (fun (k, v) -> Printf.sprintf "%s%c%s" k sep v) entries)
    in
    Printf.sprintf "syncsnap%c%d%c%d%c%s" sep joiner sep applied snap_sep body

let decode body =
  match String.index_opt body snap_sep with
  | Some _ -> (
    (* syncsnap <sep> joiner <sep> applied <snap_sep> k<sep>v <snap_sep> ... *)
    match String.split_on_char snap_sep body with
    | header :: entry_strs -> (
      match String.split_on_char sep header with
      | [ "syncsnap"; joiner; applied ] -> (
        match (int_of_string_opt joiner, int_of_string_opt applied) with
        | Some joiner, Some applied ->
          let entries =
            List.filter_map
              (fun e ->
                match String.split_on_char sep e with
                | [ k; v ] -> Some (k, v)
                | _ -> None)
              entry_strs
          in
          Some (Sync_snapshot { joiner; applied; entries })
        | _, _ -> None)
      | _ -> None)
    | [] -> None)
  | None -> (
    match String.split_on_char sep body with
    | [ "put"; k; v ] -> Some (Put (k, v))
    | [ "del"; k ] -> Some (Delete k)
    | [ "inc"; k; by ] -> (
      match int_of_string_opt by with Some by -> Some (Incr (k, by)) | None -> None)
    | [ "syncreq"; joiner; responder ] -> (
      match (int_of_string_opt joiner, int_of_string_opt responder) with
      | Some joiner, Some responder -> Some (Sync_req { joiner; responder })
      | _, _ -> None)
    | _ -> None)

type sync_state =
  | Synced
  | Awaiting_req  (* late joiner: ignore everything until our request *)
  | Awaiting_snapshot of op list ref  (* buffering ops ordered after it *)

type t = {
  mw : MW.t;
  node : int;
  state : (string, string) Hashtbl.t;
  mutable applied : int;
  mutable sync : sync_state;
}

let int_of_cell = function
  | None -> 0
  | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 0)

let entries t =
  (* dpu-lint: allow hashtbl-iter — folded entries are sorted by key below *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.state []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let broadcast_op t op =
  let body = encode op in
  ignore (MW.broadcast t.mw ~node:t.node ~size:(64 + String.length body) body : Msg.t)

let apply_data t op =
  t.applied <- t.applied + 1;
  match op with
  | Put (k, v) -> Hashtbl.replace t.state k v
  | Delete k -> Hashtbl.remove t.state k
  | Incr (k, by) ->
    let current = int_of_cell (Hashtbl.find_opt t.state k) in
    Hashtbl.replace t.state k (string_of_int (current + by))
  | Sync_req _ | Sync_snapshot _ -> ()

(* The ordered stream drives both normal application and the state
   transfer protocol. *)
let apply t op =
  match (t.sync, op) with
  | Synced, (Put _ | Delete _ | Incr _) -> apply_data t op
  | Synced, Sync_req { joiner; responder } ->
    (* The responder snapshots its state exactly at this position of
       the history and ships it through the same ordered channel. *)
    if responder = t.node && joiner <> t.node then
      broadcast_op t
        (Sync_snapshot { joiner; applied = t.applied; entries = entries t })
  | Synced, Sync_snapshot _ -> ()
  | Awaiting_req, Sync_req { joiner; _ } when joiner = t.node ->
    t.sync <- Awaiting_snapshot (ref [])
  | Awaiting_req, _ -> ()
  | Awaiting_snapshot _, Sync_req { joiner; responder } ->
    if responder = t.node && joiner <> t.node then () (* cannot help yet *)
  | Awaiting_snapshot buffered, Sync_snapshot { joiner; applied; entries }
    when joiner = t.node ->
    Hashtbl.reset t.state;
    List.iter (fun (k, v) -> Hashtbl.replace t.state k v) entries;
    t.applied <- applied;
    t.sync <- Synced;
    (* Replay what was ordered between our request and the snapshot. *)
    List.iter (apply_data t) (List.rev !buffered)
  | Awaiting_snapshot buffered, (Put _ | Delete _ | Incr _) -> buffered := op :: !buffered
  | Awaiting_snapshot _, Sync_snapshot _ -> ()

let subscribe t =
  MW.subscribe t.mw ~node:t.node (fun (m : Msg.t) ->
      match decode m.body with
      | Some op -> apply t op
      | None -> () (* not a kv operation: another application's traffic *))

let attach mw ~node =
  let t = { mw; node; state = Hashtbl.create 64; applied = 0; sync = Synced } in
  subscribe t;
  t

let attach_late mw ~node ~from =
  let t = { mw; node; state = Hashtbl.create 64; applied = 0; sync = Awaiting_req } in
  subscribe t;
  broadcast_op t (Sync_req { joiner = node; responder = from });
  t

let synced t = t.sync = Synced

let node t = t.node

let put t k v = broadcast_op t (Put (k, v))

let delete t k = broadcast_op t (Delete k)

let incr t ?(by = 1) k = broadcast_op t (Incr (k, by))

let get t k = Hashtbl.find_opt t.state k

let get_int t k = int_of_cell (get t k)

let size t = Hashtbl.length t.state

let applied t = t.applied

let digest t =
  (* Order-insensitive: hash the sorted entry list. *)
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf sep;
      Buffer.add_string buf v;
      Buffer.add_char buf '\x01')
    (entries t);
  Digest.to_hex (Digest.string (Buffer.contents buf))
