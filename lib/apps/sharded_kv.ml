module Fabric = Dpu_core.Fabric
module MW = Dpu_core.Middleware

type t = {
  fabric : Fabric.t;
  ring : Hash_ring.t;
  replicas : Replicated_kv.t array array; (* shard -> group-local node -> replica *)
  next_writer : int array; (* per-shard round-robin over its nodes *)
}

let create ?vnodes fabric =
  let shards = Fabric.shards fabric in
  let ring = Hash_ring.create ~shards ?vnodes () in
  let replicas =
    Array.init shards (fun g ->
        let mw = Fabric.group fabric g in
        Array.init (MW.n mw) (fun node -> Replicated_kv.attach mw ~node))
  in
  { fabric; ring; replicas; next_writer = Array.make shards 0 }

let fabric t = t.fabric

let ring t = t.ring

let shard_of t key = Hash_ring.shard_of t.ring key

let replicas t ~shard = t.replicas.(shard)

let replica t ~shard ~node = t.replicas.(shard).(node)

(* Writes enter the shard's ordered broadcast from a deterministic
   round-robin writer, spreading client load over the group. *)
let writer t key =
  let g = shard_of t key in
  let group = t.replicas.(g) in
  let w = group.(t.next_writer.(g)) in
  t.next_writer.(g) <- (t.next_writer.(g) + 1) mod Array.length group;
  w

let put t key value = Replicated_kv.put (writer t key) key value

let delete t key = Replicated_kv.delete (writer t key) key

let incr t ?by key = Replicated_kv.incr (writer t key) ?by key

(* Reads are local to the owning shard: any replica of that group
   serves them from its own state — no cross-shard traffic. *)
let get t key = Replicated_kv.get t.replicas.(shard_of t key).(0) key

let get_int t key = Replicated_kv.get_int t.replicas.(shard_of t key).(0) key

let shard_digests t ~shard =
  Array.to_list (Array.map Replicated_kv.digest t.replicas.(shard))

let shard_converged t ~shard =
  match shard_digests t ~shard with
  | [] -> true
  | d :: rest -> List.for_all (String.equal d) rest

let converged t =
  let ok = ref true in
  Array.iteri (fun g _ -> if not (shard_converged t ~shard:g) then ok := false) t.replicas;
  !ok

let size t =
  Array.fold_left
    (fun acc group -> acc + Replicated_kv.size group.(0))
    0 t.replicas
