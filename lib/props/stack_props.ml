open Dpu_kernel

let weak_stack_well_formedness trace =
  (* Count blocked vs released per (node, service): weak WF holds iff
     every queued call was eventually released by a bind. *)
  let pending : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
  let checked = ref 0 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.kind with
      | Trace.Call_blocked (svc, _) ->
        incr checked;
        let k = (e.node, svc) in
        Hashtbl.replace pending k (1 + Option.value ~default:0 (Hashtbl.find_opt pending k))
      | Trace.Call_unblocked svc ->
        let k = (e.node, svc) in
        Hashtbl.replace pending k (Option.value ~default:0 (Hashtbl.find_opt pending k) - 1)
      | Trace.Add_module _ | Trace.Remove_module _ | Trace.Bind _ | Trace.Unbind _
      | Trace.Call _ | Trace.Indication _ | Trace.Crash | Trace.App _ ->
        ())
    (Trace.entries trace);
  let crashed =
    List.filter_map
      (fun (e : Trace.entry) -> match e.kind with Trace.Crash -> Some e.node | _ -> None)
      (Trace.entries trace)
  in
  let violations =
    (* dpu-lint: allow hashtbl-iter — folded violations are sorted below *)
    Hashtbl.fold
      (fun (node, svc) count acc ->
        if count > 0 && not (List.mem node crashed) then
          Printf.sprintf "%d call(s) to %s still blocked at node %d" count svc node :: acc
        else acc)
      pending []
    |> List.sort String.compare
  in
  Report.make ~property:"weak stack-well-formedness" ~checked:!checked violations

let strong_stack_well_formedness trace =
  let checked = ref 0 in
  let violations =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.kind with
        | Trace.Call (_, _) ->
          incr checked;
          None
        | Trace.Call_blocked (svc, _) ->
          incr checked;
          Some (Printf.sprintf "call to %s blocked at node %d (t=%.3f)" svc e.node e.time)
        | Trace.Add_module _ | Trace.Remove_module _ | Trace.Bind _ | Trace.Unbind _
        | Trace.Call_unblocked _ | Trace.Indication _ | Trace.Crash | Trace.App _ ->
          None)
      (Trace.entries trace)
  in
  Report.make ~property:"strong stack-well-formedness" ~checked:!checked violations

let crashes trace =
  List.filter_map
    (fun (e : Trace.entry) -> match e.kind with Trace.Crash -> Some e.node | _ -> None)
    (Trace.entries trace)

(* All (node, time) at which a module of [protocol] was bound, and the
   per-node times at which a module of [protocol] was present. *)
let binds_and_adds trace ~protocol =
  let binds = ref [] in
  let adds : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.entry) ->
      match e.kind with
      | Trace.Bind (_, m) when String.equal m protocol ->
        binds := (e.node, e.time) :: !binds
      | Trace.Add_module m when String.equal m protocol -> (
        match Hashtbl.find_opt adds e.node with
        | Some l -> l := e.time :: !l
        | None -> Hashtbl.replace adds e.node (ref [ e.time ]))
      | Trace.Add_module _ | Trace.Remove_module _ | Trace.Bind _ | Trace.Unbind _
      | Trace.Call _ | Trace.Call_blocked _ | Trace.Call_unblocked _
      | Trace.Indication _ | Trace.Crash | Trace.App _ ->
        ())
    (Trace.entries trace);
  (List.rev !binds, adds)

let weak_protocol_operationability trace ~protocol ~nodes =
  let binds, adds = binds_and_adds trace ~protocol in
  let crashed = crashes trace in
  let checked = ref 0 in
  let violations =
    if binds = [] then []
    else
      List.filter_map
        (fun node ->
          if List.mem node crashed then None
          else begin
            incr checked;
            if Hashtbl.mem adds node then None
            else
              Some
                (Printf.sprintf
                   "%s was bound in some stack but never present in stack %d" protocol
                   node)
          end)
        nodes
  in
  Report.make
    ~property:(Printf.sprintf "weak protocol-operationability(%s)" protocol)
    ~checked:!checked violations

let strong_protocol_operationability trace ~protocol ~nodes =
  let binds, adds = binds_and_adds trace ~protocol in
  let crashed = crashes trace in
  let checked = ref 0 in
  let violations =
    List.concat_map
      (fun (bind_node, bind_time) ->
        List.filter_map
          (fun node ->
            if node = bind_node || List.mem node crashed then None
            else begin
              incr checked;
              let present_at_bind_time =
                match Hashtbl.find_opt adds node with
                | None -> false
                | Some times -> List.exists (fun t -> t <= bind_time) !times
              in
              if present_at_bind_time then None
              else
                Some
                  (Printf.sprintf
                     "%s bound at node %d (t=%.3f) but not yet present at node %d"
                     protocol bind_node bind_time node)
            end)
          nodes)
      binds
  in
  Report.make
    ~property:(Printf.sprintf "strong protocol-operationability(%s)" protocol)
    ~checked:!checked violations

let check_generic trace ~protocols ~nodes =
  weak_stack_well_formedness trace
  :: List.map (fun protocol -> weak_protocol_operationability trace ~protocol ~nodes) protocols
