(* dpu_run — command-line front end for the DPU reproduction.

   Subcommands:
     scenario   run one simulated scenario with full parameter control
     fig5       regenerate Figure 5
     fig6       regenerate Figure 6
     headline   regenerate the §6 headline numbers
     compare    quantify Repl vs Graceful vs Maestro
     shard      sharded fabric under load, rolling replacement
     check      static composition verification, no simulation
     serve      live deployment over real UDP sockets (--nemesis/--scenario)
     corpus     adversarial replacement scenarios, sim or live
     trace      dump the kernel event trace of a short scenario
     report     render metrics/trace/bench-history artifacts as HTML *)

open Cmdliner
module E = Dpu_workload.Experiment
module F = Dpu_workload.Figures
module Stats = Dpu_engine.Stats

(* ------------------------------------------------------------------ *)
(* Common arguments                                                   *)
(* ------------------------------------------------------------------ *)

let n_arg =
  Arg.(value & opt int 7 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of machines.")

let load_arg =
  Arg.(
    value & opt float 40.0
    & info [ "load" ] ~docv:"MSG/S" ~doc:"Aggregate ABcast load in messages per second.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Dpu_workload.Sweep.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Fan independent experiment cells out to $(docv) worker processes. \
           Results are bit-identical for every $(docv). Defaults to \\$DPU_JOBS \
           or 1.")

let approach_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "repl" -> Ok E.Repl
    | "maestro" -> Ok E.Maestro
    | "graceful" -> Ok E.Graceful
    | "none" | "no-layer" -> Ok E.No_layer
    | other -> Error (`Msg (Printf.sprintf "unknown approach %S" other))
  in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (E.approach_name a))

(* ------------------------------------------------------------------ *)
(* scenario                                                           *)
(* ------------------------------------------------------------------ *)

let scenario n load seed duration switch_at initial switch_to approach loss batch check
    crashes consensus_layer switch_consensus_to switch_consensus_at faults nemesis_seed
    nemesis_faults metrics_out spans_out csv_out log_out =
  let consensus_layer =
    if consensus_layer || switch_consensus_to <> None then
      Some Dpu_protocols.Consensus_ct.protocol_name
    else None
  in
  let switch_consensus =
    Option.map (fun prot -> (switch_consensus_at, prot)) switch_consensus_to
  in
  let faults =
    match nemesis_seed with
    | None -> faults
    | Some seed ->
      faults
      @ Dpu_faults.Nemesis.generate
          ~rng:(Dpu_engine.Rng.create ~seed)
          ~n ~horizon_ms:duration ?faults:nemesis_faults ()
  in
  (match Dpu_faults.Schedule.validate ~n faults with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "dpu_run: bad fault schedule: %s\n" msg;
    exit 2);
  if faults <> [] then
    Format.printf "fault schedule: %a@." Dpu_faults.Schedule.pp faults;
  let obs_requested = metrics_out <> None || spans_out <> None || csv_out <> None in
  let params =
    {
      E.default with
      n;
      load;
      seed;
      duration_ms = duration;
      switch_at_ms = switch_at;
      initial;
      switch_to;
      approach;
      loss;
      batch_size = batch;
      trace_enabled = check || spans_out <> None;
      metrics_enabled = obs_requested;
      consensus_layer;
      switch_consensus;
      faults;
      log_out;
    }
  in
  let r = E.run ~crash_at:crashes params in
  Printf.printf "sent %d, delivered everywhere %d, correct nodes {%s}\n" r.E.sent
    r.E.delivered_everywhere
    (String.concat "," (List.map string_of_int r.E.correct));
  Printf.printf "normal latency: mean %.2f ms, p95 %.2f ms (%d msgs)\n"
    (Stats.mean r.E.normal)
    (Stats.percentile r.E.normal 95.0)
    (Stats.count r.E.normal);
  (match r.E.switch_window with
  | Some (lo, hi) ->
    Printf.printf "replacement: %.1f..%.1f ms (window %.1f ms); during: mean %.2f ms (%d msgs)\n"
      lo hi (hi -. lo) (Stats.mean r.E.during) (Stats.count r.E.during)
  | None -> print_endline "no replacement performed");
  if r.E.blocked_ms > 0.0 then
    Printf.printf "application blocked for %.1f ms\n" r.E.blocked_ms;
  (match metrics_out with
  | Some path ->
    Dpu_obs.Json.to_file path (Dpu_obs.Metrics.to_json r.E.metrics);
    Printf.printf "metrics snapshot written to %s\n" path
  | None -> ());
  (match spans_out with
  | Some path ->
    let events = Dpu_core.Spans.of_run ~trace:r.E.trace ~n r.E.collector in
    Dpu_obs.Json.to_file path (Dpu_core.Spans.to_json events);
    Printf.printf "%d trace events written to %s (load in Perfetto / chrome://tracing)\n"
      (List.length events) path
  | None -> ());
  (match csv_out with
  | Some path ->
    let rows =
      List.map
        (fun (p : Dpu_engine.Series.point) ->
          [ Printf.sprintf "%.3f" p.time; Printf.sprintf "%.3f" p.value ])
        (Dpu_engine.Series.points r.E.latency)
    in
    Dpu_obs.Csv.to_file path ~header:[ "send_time_ms"; "latency_ms" ] rows;
    Printf.printf "%d latency samples written to %s\n" (List.length rows) path
  | None -> ());
  (match log_out with
  | Some path -> Printf.printf "structured log written to %s\n" path
  | None -> ());
  if obs_requested then begin
    print_endline "--- observability summary ---";
    Format.printf "%a@?" Dpu_obs.Metrics.pp_summary r.E.metrics
  end;
  if check then begin
    let reports = E.check r in
    Format.printf "%a" Dpu_props.Report.pp_all reports;
    if not (Dpu_props.Report.all_ok reports) then exit 1
  end

let fault_conv =
  let parse s =
    match Dpu_faults.Schedule.event_of_spec s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Dpu_faults.Schedule.pp_event)

let crash_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ t; node ] -> (
      try Ok (float_of_string t, int_of_string node)
      with Failure _ -> Error (`Msg "expected TIME_MS:NODE"))
    | _ -> Error (`Msg "expected TIME_MS:NODE")
  in
  Arg.conv (parse, fun ppf (t, node) -> Format.fprintf ppf "%.0f:%d" t node)

let scenario_cmd =
  let duration =
    Arg.(
      value & opt float 10_000.0
      & info [ "duration" ] ~docv:"MS" ~doc:"Load generation horizon (virtual ms).")
  in
  let switch_at =
    Arg.(
      value & opt float 5_000.0
      & info [ "switch-at" ] ~docv:"MS" ~doc:"When to trigger the replacement.")
  in
  let initial =
    Arg.(
      value
      & opt string Dpu_core.Variants.ct
      & info [ "initial" ] ~docv:"PROTO"
          ~doc:"Initial ABcast variant (abcast.ct, abcast.seq, abcast.token).")
  in
  let switch_to =
    Arg.(
      value
      & opt (some string) (Some Dpu_core.Variants.ct)
      & info [ "switch-to" ] ~docv:"PROTO" ~doc:"Replacement target; omit for none.")
  in
  let approach =
    Arg.(
      value & opt approach_conv E.Repl
      & info [ "approach" ] ~docv:"A" ~doc:"repl | graceful | maestro | no-layer.")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Datagram loss probability.")
  in
  let batch =
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"K" ~doc:"Consensus batch size.")
  in
  let check =
    Arg.(value & flag & info [ "check" ] ~doc:"Verify all correctness properties afterwards.")
  in
  let crashes =
    Arg.(
      value & opt_all crash_conv []
      & info [ "crash" ] ~docv:"MS:NODE" ~doc:"Fail-stop NODE at time MS (repeatable).")
  in
  let consensus_layer =
    Arg.(
      value & flag
      & info [ "consensus-layer" ]
          ~doc:"Install the consensus replacement layer (implied by --switch-consensus-to).")
  in
  let switch_consensus_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "switch-consensus-to" ] ~docv:"IMPL"
          ~doc:"Hot-swap consensus to IMPL (consensus.ct | consensus.paxos).")
  in
  let switch_consensus_at =
    Arg.(
      value & opt float 2_500.0
      & info [ "switch-consensus-at" ] ~docv:"MS"
          ~doc:"When to trigger the consensus swap.")
  in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Schedule a fault (repeatable). SPEC is one of crash@T:NODE, \
             recover@T:NODE, partition@T:0,1|2,3, heal@T, \
             loss@FROM-UNTIL:P, dup@FROM-UNTIL:P, \
             slow@FROM-UNTIL:SRC>DST:LAT_MS.")
  in
  let nemesis_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "nemesis-seed" ] ~docv:"SEED"
          ~doc:"Additionally sample a random fault schedule from SEED.")
  in
  let nemesis_faults =
    Arg.(
      value
      & opt (some int) None
      & info [ "nemesis-faults" ] ~docv:"K"
          ~doc:"How many faults the nemesis draws (default 3).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot to FILE (enables metrics collection).")
  in
  let spans_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~docv:"FILE"
          ~doc:
            "Write per-message spans and the replacement timeline to FILE as \
             Chrome trace-event JSON (load in Perfetto); implies tracing.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-out" ] ~docv:"FILE"
          ~doc:"Write the per-message latency series to FILE as CSV.")
  in
  let log_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:
            "Write structured JSONL milestone logs to FILE, stamped on the \
             virtual clock (identical runs produce identical files).")
  in
  let term =
    Term.(
      const scenario $ n_arg $ load_arg $ seed_arg $ duration $ switch_at $ initial
      $ switch_to $ approach $ loss $ batch $ check $ crashes $ consensus_layer
      $ switch_consensus_to $ switch_consensus_at $ faults $ nemesis_seed
      $ nemesis_faults $ metrics_out $ spans_out $ csv_out $ log_out)
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run one simulated group-communication scenario.")
    term

(* ------------------------------------------------------------------ *)
(* figures                                                            *)
(* ------------------------------------------------------------------ *)

let fig5_cmd =
  let run n load seed = print_string (F.render_figure5 (F.figure5 ~n ~load ~seed ())) in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Regenerate Figure 5 (latency around a replacement).")
    Term.(const run $ n_arg $ load_arg $ seed_arg)

let fig6_cmd =
  let loads =
    Arg.(
      value
      & opt (list float) [ 10.0; 20.0; 40.0; 60.0; 80.0 ]
      & info [ "loads" ] ~docv:"L1,L2,.." ~doc:"Loads to sweep.")
  in
  let ns =
    Arg.(value & opt (list int) [ 3; 7 ] & info [ "ns" ] ~docv:"N1,N2" ~doc:"Group sizes.")
  in
  let run ns loads seed jobs =
    print_string (F.render_figure6 (F.figure6 ~ns ~loads ~seed ~jobs ()))
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Regenerate Figure 6 (latency vs load).")
    Term.(const run $ ns $ loads $ seed_arg $ jobs_arg)

let headline_cmd =
  let run n load jobs = print_string (F.render_headline (F.headline ~n ~load ~jobs ())) in
  Cmd.v
    (Cmd.info "headline" ~doc:"Regenerate the headline numbers of §6.")
    Term.(const run $ n_arg $ load_arg $ jobs_arg)

let compare_cmd =
  let run n load seed jobs =
    print_string (F.render_comparison (F.compare_approaches ~n ~load ~seed ~jobs ()))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Quantify Repl vs Graceful Adaptation vs Maestro.")
    Term.(const run $ n_arg $ load_arg $ seed_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* shard — multi-group fabric under load, rolling replacement         *)
(* ------------------------------------------------------------------ *)

let shard_cmd =
  let module Sh = Dpu_workload.Shard in
  let shards_arg =
    Arg.(
      value & opt int Sh.default.shards
      & info [ "shards" ] ~docv:"S" ~doc:"Number of independent ABcast groups.")
  in
  let n_total =
    Arg.(
      value & opt int 15
      & info [ "n"; "nodes" ] ~docv:"N"
          ~doc:"Total nodes, partitioned round-robin across the shards.")
  in
  let duration =
    Arg.(
      value & opt float Sh.default.duration_ms
      & info [ "duration" ] ~docv:"MS" ~doc:"How long the load runs.")
  in
  let warmup =
    Arg.(
      value & opt float Sh.default.warmup_ms
      & info [ "warmup" ] ~docv:"MS"
          ~doc:"Latency samples before this instant are discarded.")
  in
  let drain =
    Arg.(
      value & opt float Sh.default.drain_ms
      & info [ "drain" ] ~docv:"MS"
          ~doc:"Extra virtual time after the load stops, for in-flight messages.")
  in
  let msg_size =
    Arg.(
      value & opt int Sh.default.msg_size
      & info [ "msg-size" ] ~docv:"BYTES" ~doc:"Broadcast payload size.")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P" ~doc:"Per-message network loss probability.")
  in
  let closed_loop =
    Arg.(
      value
      & opt (some int) None
      & info [ "closed-loop" ] ~docv:"K"
          ~doc:
            "Replace the open-loop generators with $(docv) closed-loop clients \
             per node (each re-sends on its own delivery).")
  in
  let rolling =
    Arg.(
      value & flag
      & info [ "rolling" ]
          ~doc:
            "Perform a rolling protocol replacement: every shard switches, \
             triggers staggered by --stagger, while the load keeps flowing.")
  in
  let rolling_to =
    Arg.(
      value
      & opt string Sh.default_rolling.to_protocol
      & info [ "rolling-to" ] ~docv:"PROT" ~doc:"ABcast variant to switch to.")
  in
  let rolling_at =
    Arg.(
      value
      & opt float Sh.default_rolling.start_ms
      & info [ "rolling-at" ] ~docv:"MS" ~doc:"When the first shard's switch fires.")
  in
  let stagger =
    Arg.(
      value
      & opt float Sh.default_rolling.stagger_ms
      & info [ "stagger" ] ~docv:"MS"
          ~doc:
            "Delay between consecutive shards' triggers. Smaller than a switch \
             window means the windows overlap — that overlap is the point.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv-out" ] ~docv:"FILE" ~doc:"Write the per-shard table to FILE as CSV.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:
            "Write the full result to FILE as JSON (feed to $(b,dpu_run report \
             --shard)).")
  in
  let run n shards load seed msg_size duration warmup drain loss closed_loop rolling
      rolling_to rolling_at stagger csv_out json_out =
    let rolling =
      if rolling then
        Some { Sh.to_protocol = rolling_to; start_ms = rolling_at; stagger_ms = stagger }
      else None
    in
    let params =
      {
        Sh.n;
        shards;
        seed;
        msg_size;
        load_per_s = load;
        warmup_ms = warmup;
        duration_ms = duration;
        drain_ms = drain;
        closed_loop;
        rolling;
        loss;
      }
    in
    let r = Sh.run ~params () in
    print_string
      (Dpu_workload.Ascii.table ~header:Sh.csv_header (Sh.csv_rows r));
    if rolling <> None then
      Printf.printf "\nmax concurrent in-flight swaps: %d\n" r.Sh.max_concurrent_switches;
    List.iter
      (fun (s : Sh.shard_result) ->
        List.iter
          (fun v -> Printf.printf "shard %d VIOLATION: %s\n" s.shard v)
          s.violations)
      r.Sh.per_shard;
    Option.iter
      (fun path ->
        Sh.write_csv path r;
        Printf.printf "per-shard CSV written to %s\n" path)
      csv_out;
    Option.iter
      (fun path ->
        Dpu_obs.Json.to_file path (Sh.to_json r);
        Printf.printf "result JSON written to %s\n" path)
      json_out;
    if r.Sh.all_ok then print_string "all shards OK\n"
    else begin
      print_string "FAILED: at least one shard violated its battery\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run a consistent-hash-sharded fabric — many independent ABcast groups \
          over one simulator — under sustained load, optionally with a rolling \
          protocol replacement across every shard, and report per-shard latency \
          quantiles, switch windows and property batteries.")
    Term.(
      const run $ n_total $ shards_arg $ load_arg $ seed_arg $ msg_size $ duration
      $ warmup $ drain $ loss $ closed_loop $ rolling $ rolling_to $ rolling_at
      $ stagger $ csv_out $ json_out)

(* ------------------------------------------------------------------ *)
(* check — static composition verification, no simulation             *)
(* ------------------------------------------------------------------ *)

let shipped_configs =
  let base = { E.default with duration_ms = 0.0 } in
  [
    ("repl ct->ct", { base with approach = E.Repl });
    ("graceful ct->ct", { base with approach = E.Graceful });
    ("maestro ct->ct", { base with approach = E.Maestro });
    ("no-layer ct", { base with approach = E.No_layer; switch_to = None });
  ]
  (* the full old/new matrix over the shipped ABcast variants *)
  @ List.concat_map
      (fun initial ->
        List.map
          (fun target ->
            ( Printf.sprintf "repl %s->%s" initial target,
              { base with initial; switch_to = Some target } ))
          Dpu_core.Variants.all)
      Dpu_core.Variants.all
  @ [
      ( "repl seq->token, batched",
        {
          base with
          initial = Dpu_core.Variants.sequencer;
          switch_to = Some Dpu_core.Variants.token;
          batching = Some { Dpu_protocols.Batcher.max_batch = 16; max_delay_ms = 2.0 };
        } );
      ("repl ct, no switch", { base with switch_to = None });
      ( "repl ct->ct + consensus ct->paxos",
        {
          base with
          consensus_layer = Some Dpu_protocols.Consensus_ct.protocol_name;
          switch_consensus = Some (2_500.0, Dpu_protocols.Consensus_paxos.protocol_name);
        } );
    ]

let check_one ~label params =
  let reports = E.preflight params in
  let ok = Dpu_props.Report.all_ok reports in
  Format.printf "@[<v>-- %s: %s@,%a@]@." label
    (if ok then "OK" else "REJECTED")
    Dpu_props.Report.pp_all reports;
  (ok, reports)

let check n initial switch_to approach batch consensus_layer switch_consensus_to
    no_epoch_buffer shipped json_out =
  let results =
    if shipped then List.map (fun (label, p) -> check_one ~label p) shipped_configs
    else begin
      let consensus_layer =
        if consensus_layer || switch_consensus_to <> None then
          Some Dpu_protocols.Consensus_ct.protocol_name
        else None
      in
      let params =
        {
          E.default with
          n;
          initial;
          switch_to;
          approach;
          batch_size = batch;
          consensus_layer;
          switch_consensus =
            Option.map (fun prot -> (2_500.0, prot)) switch_consensus_to;
          epoch_buffer = not no_epoch_buffer;
        }
      in
      [ check_one ~label:"configuration" params ]
    end
  in
  (match json_out with
  | Some path ->
    let reports = List.concat_map snd results in
    Dpu_obs.Json.to_file path (Dpu_analysis.Composition.to_json reports);
    Printf.printf "verdicts written to %s\n" path
  | None -> ());
  if List.for_all fst results then
    print_endline "static composition check: all configurations OK"
  else begin
    print_endline "static composition check: FAILED";
    exit 1
  end

let check_cmd =
  let initial =
    Arg.(
      value
      & opt string Dpu_core.Variants.ct
      & info [ "initial" ] ~docv:"PROTO" ~doc:"Initial ABcast variant.")
  in
  let switch_to =
    Arg.(
      value
      & opt (some string) (Some Dpu_core.Variants.ct)
      & info [ "switch-to" ] ~docv:"PROTO" ~doc:"Replacement target; omit for none.")
  in
  let approach =
    Arg.(
      value & opt approach_conv E.Repl
      & info [ "approach" ] ~docv:"A" ~doc:"repl | graceful | maestro | no-layer.")
  in
  let batch =
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"K" ~doc:"Consensus batch size.")
  in
  let consensus_layer =
    Arg.(
      value & flag
      & info [ "consensus-layer" ]
          ~doc:"Install the consensus replacement layer (implied by --switch-consensus-to).")
  in
  let switch_consensus_to =
    Arg.(
      value
      & opt (some string) None
      & info [ "switch-consensus-to" ] ~docv:"IMPL"
          ~doc:"Plan a consensus hot-swap to IMPL (consensus.ct | consensus.paxos).")
  in
  let no_epoch_buffer =
    Arg.(
      value & flag
      & info [ "no-epoch-buffer" ]
          ~doc:
            "Plan the stack without the future-epoch wire buffer. The \
             behavioural check rejects any switch under this flag: a \
             late-switching node would lose the successor's early traffic.")
  in
  let shipped =
    Arg.(
      value & flag
      & info [ "shipped" ]
          ~doc:
            "Verify every shipped configuration — the full old/new ABcast \
             pair matrix plus the batched and consensus-swap plans — instead \
             of one.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the verdicts to FILE as JSON.")
  in
  let term =
    Term.(
      const check $ n_arg $ initial $ switch_to $ approach $ batch $ consensus_layer
      $ switch_consensus_to $ no_epoch_buffer $ shipped $ json_out)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify a stack composition and update plan without running \
          any simulation (missing providers, provider cycles, duplicate \
          bindings, unsafe replacement plans).")
    term

(* ------------------------------------------------------------------ *)
(* serve — live deployment over real UDP sockets                      *)
(* ------------------------------------------------------------------ *)

let corpus_switches (sc : Dpu_faults.Corpus.t) =
  List.map
    (fun (s : Dpu_faults.Corpus.switch) ->
      (s.Dpu_faults.Corpus.sw_at, s.Dpu_faults.Corpus.sw_node, s.Dpu_faults.Corpus.sw_to))
    sc.Dpu_faults.Corpus.switches

let serve n load duration drain switch_at initial switch_to seed msg_size batching
    check nemesis scenario_name metrics_out spans_out trace_out logs_dir =
  let params =
    {
      Dpu_live.Serve.n;
      load;
      duration_ms = duration;
      drain_ms = drain;
      switch_at_ms = switch_at;
      initial;
      switch_to;
      switches = [];
      nemesis;
      msg_size;
      seed;
      batching;
    }
  in
  let params =
    match scenario_name with
    | None -> params
    | Some name -> (
      match Dpu_faults.Corpus.find name with
      | None ->
        Printf.eprintf "dpu_run serve: unknown scenario %S (have: %s)\n" name
          (String.concat ", " (Dpu_faults.Corpus.names ()));
        exit 2
      | Some sc ->
        Printf.printf "scenario %s: %s\n" sc.Dpu_faults.Corpus.name
          sc.Dpu_faults.Corpus.summary;
        {
          params with
          Dpu_live.Serve.n = sc.Dpu_faults.Corpus.n;
          load = sc.Dpu_faults.Corpus.load;
          duration_ms = sc.Dpu_faults.Corpus.duration_ms;
          drain_ms = sc.Dpu_faults.Corpus.drain_ms;
          initial = sc.Dpu_faults.Corpus.initial;
          switch_to = None;
          switches = corpus_switches sc;
          nemesis = sc.Dpu_faults.Corpus.schedule;
        })
  in
  Printf.printf "serving %d nodes over UDP on 127.0.0.1 (%.0f msg/s for %.0f ms)\n%!"
    params.Dpu_live.Serve.n params.Dpu_live.Serve.load
    params.Dpu_live.Serve.duration_ms;
  if params.Dpu_live.Serve.nemesis <> [] then
    Format.printf "fault schedule: %a@.%!" Dpu_faults.Schedule.pp
      params.Dpu_live.Serve.nemesis;
  match Dpu_live.Serve.run ?metrics_out ?spans_out ?trace_out ?logs_dir params with
  | Error msg ->
    Printf.eprintf "dpu_run serve: %s\n" msg;
    exit 2
  | Ok o ->
    let module C = Dpu_core.Collector in
    let module T = Dpu_runtime.Transport in
    let module FT = Dpu_faults.Fault_transport in
    List.iter
      (fun (r : Dpu_live.Node.report) ->
        let c = r.Dpu_live.Node.counters in
        Printf.printf
          "node %d: sent %d, delivered %d; wire: %d out / %d in / %d dropped, %d bytes\n"
          r.Dpu_live.Node.node
          (List.length r.Dpu_live.Node.sends)
          (List.length r.Dpu_live.Node.delivers)
          c.T.sent c.T.delivered c.T.dropped c.T.bytes;
        (match r.Dpu_live.Node.batches with
        | None -> ()
        | Some b ->
          Printf.printf "node %d: %d egress batches carrying %d msgs (avg %.1f/frame)\n"
            r.Dpu_live.Node.node b.T.batches_sent b.T.batched_msgs
            (if b.T.batches_sent = 0 then 0.0
             else float_of_int b.T.batched_msgs /. float_of_int b.T.batches_sent));
        if r.Dpu_live.Node.rx_errors > 0 then
          Printf.printf "node %d: survived %d receive errors\n"
            r.Dpu_live.Node.node r.Dpu_live.Node.rx_errors;
        match r.Dpu_live.Node.faults with
        | None -> ()
        | Some f ->
          Printf.printf
            "node %d faults: crash-blocked %d, partition-blocked %d, lost %d, \
             duplicated %d, delayed %d, rx-blocked %d\n"
            r.Dpu_live.Node.node f.FT.blocked_crash f.FT.blocked_partition
            f.FT.injected_loss f.FT.injected_dup f.FT.delayed f.FT.rx_blocked)
      o.Dpu_live.Serve.node_reports;
    let collector = o.Dpu_live.Serve.collector in
    let planned =
      (match params.Dpu_live.Serve.switch_to with
      | Some p -> [ (params.Dpu_live.Serve.switch_at_ms, 0, p) ]
      | None -> [])
      @ params.Dpu_live.Serve.switches
    in
    if planned = [] then print_endline "no replacement requested"
    else
      List.iteri
        (fun i (_, _, proto) ->
          let generation = i + 1 in
          match C.switch_window collector ~generation with
          | Some (lo, hi) ->
            Printf.printf
              "replacement to %s: %.1f..%.1f ms (window %.1f ms), %d/%d nodes\n"
              proto lo hi (hi -. lo)
              (List.length
                 (List.filter
                    (fun (_, g, _) -> g = generation)
                    (C.switches collector)))
              params.Dpu_live.Serve.n
          | None -> Printf.printf "replacement to %s: never completed\n" proto)
        planned;
    (match metrics_out with
    | Some path -> Printf.printf "per-node metrics written to %s\n" path
    | None -> ());
    (match spans_out with
    | Some path ->
      Printf.printf "merged trace events written to %s (load in Perfetto)\n" path
    | None -> ());
    (match trace_out with
    | Some path ->
      Printf.printf
        "merged cross-process trace written to %s (load in Perfetto)\n" path
    | None -> ());
    (match logs_dir with
    | Some dir -> Printf.printf "per-node JSONL logs written to %s/\n" dir
    | None -> ());
    if check then begin
      let checks = o.Dpu_live.Serve.checks in
      Format.printf "%a" Dpu_props.Report.pp_all checks;
      if not (Dpu_props.Report.all_ok checks) then exit 1
    end

let serve_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"OS processes to launch.")
  in
  let load =
    Arg.(
      value & opt float 30.0
      & info [ "load" ] ~docv:"MSG/S" ~doc:"Aggregate ABcast load in messages per second.")
  in
  let duration =
    Arg.(
      value & opt float 3_000.0
      & info [ "duration" ] ~docv:"MS" ~doc:"Load generation horizon (wall-clock ms).")
  in
  let drain =
    Arg.(
      value & opt float 1_500.0
      & info [ "drain" ] ~docv:"MS" ~doc:"Settle time after the load stops.")
  in
  let switch_at =
    Arg.(
      value & opt float 1_500.0
      & info [ "switch-at" ] ~docv:"MS" ~doc:"When node 0 triggers the replacement.")
  in
  let initial =
    Arg.(
      value
      & opt string Dpu_core.Variants.ct
      & info [ "initial" ] ~docv:"PROTO" ~doc:"Initial ABcast variant.")
  in
  let switch_to =
    Arg.(
      value
      & opt (some string) (Some Dpu_core.Variants.sequencer)
      & info [ "switch-to" ] ~docv:"PROTO" ~doc:"Replacement target; omit for none.")
  in
  let msg_size =
    Arg.(
      value & opt int 1_024
      & info [ "size" ] ~docv:"BYTES" ~doc:"Modelled application payload size.")
  in
  let batching =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Throughput mode: batch up to K messages per UDP frame on egress \
             and aggregate up to K messages per ordering round in the ABcast \
             hot path. Omit for the unbatched legacy paths.")
  in
  let check =
    Arg.(
      value & opt bool true
      & info [ "check" ] ~docv:"BOOL"
          ~doc:"Verify the atomic broadcast properties on the merged trace.")
  in
  let nemesis =
    Arg.(
      value & opt_all fault_conv []
      & info [ "nemesis" ] ~docv:"SPEC"
          ~doc:
            "Schedule a network fault against the live deployment (repeatable). \
             SPEC is one of crash@T:NODE, recover@T:NODE, partition@T:0,1|2,3, \
             heal@T, loss@FROM-UNTIL:P, dup@FROM-UNTIL:P, \
             slow@FROM-UNTIL:SRC>DST:LAT_MS. Interpreted by a fault shim behind \
             the transport seam in every node process.")
  in
  let scenario_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "Run a named corpus scenario (overrides -n, --load, --duration, \
             --drain, --initial, --switch-to and installs its fault schedule). \
             See $(b,dpu_run corpus) for the list.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write per-node metrics and transport counters to FILE as JSON.")
  in
  let spans_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~docv:"FILE"
          ~doc:"Write the merged per-message spans to FILE as Chrome trace-event JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Turn per-node trace recording on and write ONE merged Chrome trace \
             to FILE: per-message spans, each process's own events (switch \
             triggers, fault injections, start/stop marks) and the nemesis \
             schedule as fault windows, all on the shared epoch's time axis.")
  in
  let logs_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "logs-out" ] ~docv:"DIR"
          ~doc:
            "Give each node process a structured JSONL log file \
             (DIR/node-<i>.jsonl, created on demand).")
  in
  let term =
    Term.(
      const serve $ nodes $ load $ duration $ drain $ switch_at $ initial $ switch_to
      $ seed_arg $ msg_size $ batching $ check $ nemesis $ scenario_name
      $ metrics_out $ spans_out $ trace_out $ logs_dir)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the stack live: one OS process per node, real UDP sockets on \
          localhost, wall-clock timers, with a mid-stream protocol replacement — \
          optionally under a scripted fault schedule (--nemesis / --scenario). \
          The same code that runs under the simulator, on the live runtime \
          backend.")
    term

(* ------------------------------------------------------------------ *)
(* corpus — the adversarial replacement scenarios, sim or live        *)
(* ------------------------------------------------------------------ *)

let corpus only live seed msg_size =
  let module Corpus = Dpu_faults.Corpus in
  let module S = Dpu_workload.Scenario in
  let scenarios =
    match only with
    | None -> Corpus.all
    | Some name -> (
      match Corpus.find name with
      | Some sc -> [ sc ]
      | None ->
        Printf.eprintf "dpu_run corpus: unknown scenario %S (have: %s)\n" name
          (String.concat ", " (Corpus.names ()));
        exit 2)
  in
  let failures = ref [] in
  List.iter
    (fun (sc : Corpus.t) ->
      Printf.printf "== %s (%s) ==\n" sc.Corpus.name
        (if live then "live UDP" else "simulated");
      Printf.printf "%s\n" sc.Corpus.summary;
      Format.printf "fault schedule: %a@.%!" Dpu_faults.Schedule.pp
        sc.Corpus.schedule;
      let ok =
        if live then begin
          let params =
            {
              Dpu_live.Serve.n = sc.Corpus.n;
              load = sc.Corpus.load;
              duration_ms = sc.Corpus.duration_ms;
              drain_ms = sc.Corpus.drain_ms;
              switch_at_ms = 0.0;
              initial = sc.Corpus.initial;
              switch_to = None;
              switches = corpus_switches sc;
              nemesis = sc.Corpus.schedule;
              msg_size;
              seed;
              batching = None;
            }
          in
          match Dpu_live.Serve.run params with
          | Error msg ->
            Printf.printf "run failed: %s\n" msg;
            false
          | Ok o ->
            Format.printf "%a" Dpu_props.Report.pp_all o.Dpu_live.Serve.checks;
            Dpu_props.Report.all_ok o.Dpu_live.Serve.checks
        end
        else begin
          let r = S.run_sim ~seed sc in
          List.iter
            (fun (generation, window) ->
              match window with
              | Some (lo, hi) ->
                Printf.printf "generation %d installed: %.1f..%.1f ms\n"
                  generation lo hi
              | None -> Printf.printf "generation %d: not installed\n" generation)
            r.S.switch_windows;
          Format.printf "%a" Dpu_props.Report.pp_all r.S.reports;
          S.ok r
        end
      in
      Printf.printf "%s: %s\n\n" sc.Corpus.name (if ok then "OK" else "FAILED");
      if not ok then failures := sc.Corpus.name :: !failures)
    scenarios;
  match List.rev !failures with
  | [] -> print_endline "corpus: all scenarios OK"
  | failed ->
    Printf.printf "corpus: FAILED: %s\n" (String.concat ", " failed);
    exit 1

let corpus_cmd =
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"NAME" ~doc:"Run a single scenario instead of all.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:
            "Run over real UDP sockets (one process per node) instead of the \
             simulator. Same scenario values, same fault shim, different clock.")
  in
  let msg_size =
    Arg.(
      value & opt int 1_024
      & info [ "size" ] ~docv:"BYTES" ~doc:"Modelled application payload size.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Run the adversarial replacement scenario corpus — replacements under \
          partitions, races, coordinator crashes, rollbacks and cascades — and \
          check the full atomic broadcast battery on every merged trace. \
          Defaults to the simulator; --live replays the same schedules over \
          real UDP sockets.")
    Term.(const corpus $ only $ live $ seed_arg $ msg_size)

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run n load duration switch_at switch_to grep =
    let params =
      {
        E.default with
        n;
        load;
        duration_ms = duration;
        switch_at_ms = switch_at;
        switch_to;
        trace_enabled = true;
      }
    in
    let r = E.run params in
    let matches s =
      match grep with
      | None -> true
      | Some needle ->
        let nl = String.length needle and hl = String.length s in
        let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
    in
    List.iter
      (fun e ->
        let line = Format.asprintf "%a" Dpu_kernel.Trace.pp_entry e in
        if matches line then print_endline line)
      (Dpu_kernel.Trace.entries r.E.trace)
  in
  let duration =
    Arg.(value & opt float 500.0 & info [ "duration" ] ~docv:"MS" ~doc:"Horizon.")
  in
  let switch_at =
    Arg.(value & opt float 250.0 & info [ "switch-at" ] ~docv:"MS" ~doc:"Switch time.")
  in
  let switch_to =
    Arg.(
      value
      & opt (some string) (Some Dpu_core.Variants.sequencer)
      & info [ "switch-to" ] ~docv:"PROTO" ~doc:"Replacement target; omit for none.")
  in
  let grep =
    Arg.(
      value
      & opt (some string) None
      & info [ "grep" ] ~docv:"SUBSTR" ~doc:"Only print matching trace lines.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump the kernel event trace of a short scenario.")
    Term.(const run $ n_arg $ load_arg $ duration $ switch_at $ switch_to $ grep)

(* ------------------------------------------------------------------ *)
(* report — render observability artifacts as one HTML page           *)
(* ------------------------------------------------------------------ *)

let report metrics_path trace_path shard_path history_dir out title =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "dpu_run report: %s\n" m; exit 2) fmt in
  let read_json path =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> fail "%s" e
    | content -> (
      match Dpu_obs.Json.of_string content with
      | Ok j -> j
      | Error e -> fail "%s: %s" path e)
  in
  let metrics = Option.map read_json metrics_path in
  let shard = Option.map read_json shard_path in
  let trace =
    Option.map
      (fun path ->
        match Dpu_obs.Trace_event.events_of_json (read_json path) with
        | Ok events -> events
        | Error e -> fail "%s: %s" path e)
      trace_path
  in
  let history =
    match history_dir with
    | None -> []
    | Some dir ->
      let entries =
        match Sys.readdir dir with
        | exception Sys_error e -> fail "%s" e
        | entries -> entries
      in
      (* Filename order IS the history order: name the files so they
         sort chronologically (zero-padded sequence numbers, dates, or
         CI run numbers). *)
      Array.sort String.compare entries;
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.map (fun f ->
             (Filename.remove_extension f, read_json (Filename.concat dir f)))
  in
  if metrics = None && trace = None && shard = None && history = [] then
    fail "nothing to render: give at least one of --metrics, --trace, --shard, --history";
  let html = Dpu_obs.Report_html.render ?metrics ?trace ?shard ~history ~title () in
  Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc html);
  (match trace with
  | Some events ->
    List.iter
      (fun (generation, (lo, hi)) ->
        Printf.printf "replacement gen=%d: %.1f..%.1f ms (window %.1f ms)\n"
          generation lo hi (hi -. lo))
      (Dpu_obs.Report_html.windows_of_events events)
  | None -> ());
  if history <> [] then
    Printf.printf "trend history: %d bench entries (%s .. %s)\n"
      (List.length history)
      (fst (List.hd history))
      (fst (List.nth history (List.length history - 1)));
  Printf.printf "report written to %s (%d bytes, self-contained HTML)\n" out
    (String.length html)

let report_cmd =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Metrics snapshot to render latency-quantile tables from (either a \
             $(b,scenario --metrics-out) snapshot or a $(b,serve --metrics-out) \
             per-node file).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Chrome trace to render the replacement timeline from (a $(b,serve \
             --trace-out) merged trace or a --spans-out export).")
  in
  let shard =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"FILE"
          ~doc:
            "Sharded-run JSON (a $(b,shard --json-out) export) to render the \
             per-shard quantile table and switch-window swimlane from.")
  in
  let history =
    Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"DIR"
          ~doc:
            "Directory of BENCH_results.json files (sorted by filename = \
             chronological order) to render per-commit trend charts from.")
  in
  let out =
    Arg.(
      value
      & opt string "dpu_report.html"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output HTML path.")
  in
  let title =
    Arg.(
      value
      & opt string "dpu run report"
      & info [ "title" ] ~docv:"TITLE" ~doc:"Page title.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render observability artifacts — a metrics snapshot, a merged Chrome \
          trace, a history of bench results — as one self-contained HTML page: \
          switch-window timeline, p50/p99/p999 latency tables, per-commit trend \
          charts.")
    Term.(const report $ metrics $ trace $ shard $ history $ out $ title)

let () =
  let doc = "Dynamic protocol update (IPDPS 2006) — simulation driver" in
  let info = Cmd.info "dpu_run" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            scenario_cmd;
            fig5_cmd;
            fig6_cmd;
            headline_cmd;
            compare_cmd;
            shard_cmd;
            check_cmd;
            serve_cmd;
            corpus_cmd;
            trace_cmd;
            report_cmd;
          ]))
