(* dpu_lint — determinism lint over the simulation sources.

   Usage: dpu_lint [--json FILE] [PATH ...]   (default path: lib)

   Exit status 0 iff no unsuppressed finding. See Dpu_analysis.Lint for
   the rule set and the suppression-comment syntax. *)

let () =
  let json_out = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--json" :: [] ->
      prerr_endline "dpu_lint: --json needs a file argument";
      exit 2
    | ("--help" | "-h") :: _ ->
      print_endline "usage: dpu_lint [--json FILE] [PATH ...]   (default: lib)";
      exit 0
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  (match List.find_opt (fun p -> not (Sys.file_exists p)) paths with
  | Some missing ->
    Printf.eprintf "dpu_lint: no such path: %s\n" missing;
    exit 2
  | None -> ());
  let findings = Dpu_analysis.Lint.scan_paths paths in
  List.iter
    (fun f -> Format.printf "%a@." Dpu_analysis.Lint.pp_finding f)
    findings;
  (match !json_out with
  | Some file -> Dpu_obs.Json.to_file file (Dpu_analysis.Lint.to_json findings)
  | None -> ());
  match findings with
  | [] -> print_endline "dpu_lint: clean"
  | fs ->
    Printf.printf "dpu_lint: %d finding(s)\n" (List.length fs);
    exit 1
